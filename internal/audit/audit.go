// Package audit provides a per-sample lifecycle ledger for the serving
// stack. Every sample minted by the workload generator is tracked through
// its transitions — arrived → queued (batcher) → dispatched(stage,
// instance) → merged → completed(exit layer) | dropped(reason) — each with
// its virtual timestamp. At end of run Verify asserts conservation
// invariants: no sample is lost or double-terminated, timestamps are
// monotone per sample, every drop carries a classified reason, and
// per-stage in/out counts balance. The ledger is the simulator's
// self-check: E3's whole value proposition is goodput accounting under
// SLOs (§3.1, §4), so every sample must be accounted exactly once.
//
// A nil *Ledger is valid and records nothing, so call sites wire events
// unconditionally and auditing costs nothing when disabled.
package audit

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates lifecycle transitions.
type Kind uint8

const (
	// KindArrived marks a sample minted by the generator.
	KindArrived Kind = iota
	// KindQueued marks admission into a batcher queue.
	KindQueued
	// KindDispatched marks hand-off to a runner stage instance.
	KindDispatched
	// KindMerged marks entry into a stage's survivor merge queue.
	KindMerged
	// KindCompleted marks execution finishing (terminal).
	KindCompleted
	// KindDropped marks shedding without completion (terminal).
	KindDropped
)

// String names the kind for violation messages.
func (k Kind) String() string {
	switch k {
	case KindArrived:
		return "arrived"
	case KindQueued:
		return "queued"
	case KindDispatched:
		return "dispatched"
	case KindMerged:
		return "merged"
	case KindCompleted:
		return "completed"
	case KindDropped:
		return "dropped"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Reason classifies why a sample was dropped.
type Reason string

const (
	// ReasonAdmission: shed on arrival — hopeless even if dispatched now.
	ReasonAdmission Reason = "admission"
	// ReasonStaleShed: shed from a runner backlog after its deadline became
	// unreachable (Clockwork-style, §3.1).
	ReasonStaleShed Reason = "stale-shed"
	// ReasonSLAFlush: shed from the batcher queue at an SLA-pressure flush.
	ReasonSLAFlush Reason = "sla-flush"
)

// Event is one recorded transition.
type Event struct {
	Kind Kind
	// At is the virtual time of the transition.
	At float64
	// Stage and Instance locate a dispatch (Instance is a device index).
	Stage, Instance int
	// ExitLayer is the 1-based exit layer of a completion.
	ExitLayer int
	// Reason classifies a drop.
	Reason Reason
}

// Ledger records lifecycle events keyed by sample ID. It is not safe for
// concurrent use; like the sim engine, all recording happens on the event
// loop's goroutine.
//
// A ledger runs in one of two modes. The exhaustive mode (NewLedger)
// stores every event of every sample — the default for experiments and
// the verify gates. The sampled mode (NewSampledLedger) stores per-event
// detail only for every Nth sample ID while still maintaining exact O(1)
// terminal totals for the whole population, so conservation cross-checks
// against the collector and telemetry stay exact at paper-trace scale
// (tens of millions of requests) where exhaustive tracking would dominate
// both memory and the event loop's hot path.
type Ledger struct {
	events map[int64][]Event
	order  []int64
	// stride samples per-event detail for ids divisible by it (≤1 =
	// exhaustive).
	stride int64
	// Population-exact O(1) counters, maintained for every event whether
	// or not its sample is tracked in detail.
	arrivedTotal   int
	completedTotal int
	droppedTotal   int
	byReasonTotal  map[Reason]int
}

// NewLedger returns an empty exhaustive ledger.
func NewLedger() *Ledger {
	return &Ledger{events: make(map[int64][]Event), stride: 1, byReasonTotal: make(map[Reason]int)}
}

// NewSampledLedger returns a ledger that audits per-sample invariants on
// every stride-th sample ID while keeping exact terminal totals for all
// samples. A stride ≤ 1 is exhaustive.
func NewSampledLedger(stride int64) *Ledger {
	l := NewLedger()
	if stride > 1 {
		l.stride = stride
	}
	return l
}

// Enabled reports whether events are being recorded.
func (l *Ledger) Enabled() bool { return l != nil }

// Stride reports the detail-sampling stride (1 = exhaustive, nil = 0).
func (l *Ledger) Stride() int64 {
	if l == nil {
		return 0
	}
	return l.stride
}

// tracked reports whether the sample's per-event detail is stored.
func (l *Ledger) tracked(id int64) bool { return l.stride <= 1 || id%l.stride == 0 }

//e3:hotpath runs once per lifecycle event; sampled mode counts in O(1) and must not allocate off the detail path
func (l *Ledger) record(id int64, e Event) {
	if l == nil {
		return
	}
	switch e.Kind {
	case KindArrived:
		l.arrivedTotal++
	case KindCompleted:
		l.completedTotal++
	case KindDropped:
		l.droppedTotal++
		l.byReasonTotal[e.Reason]++
	}
	if !l.tracked(id) {
		return
	}
	if _, seen := l.events[id]; !seen {
		l.order = append(l.order, id)
	}
	l.events[id] = append(l.events[id], e)
}

// Arrived records a sample minted by the generator at virtual time at.
func (l *Ledger) Arrived(id int64, at float64) {
	l.record(id, Event{Kind: KindArrived, At: at})
}

// Queued records admission into a batcher queue.
func (l *Ledger) Queued(id int64, at float64) {
	l.record(id, Event{Kind: KindQueued, At: at})
}

// Dispatched records hand-off to stage's instance (a device index).
func (l *Ledger) Dispatched(id int64, at float64, stage, instance int) {
	l.record(id, Event{Kind: KindDispatched, At: at, Stage: stage, Instance: instance})
}

// Merged records entry into stage's survivor merge queue.
func (l *Ledger) Merged(id int64, at float64, stage int) {
	l.record(id, Event{Kind: KindMerged, At: at, Stage: stage})
}

// Completed records execution finishing with the given 1-based exit layer.
func (l *Ledger) Completed(id int64, at float64, exitLayer int) {
	l.record(id, Event{Kind: KindCompleted, At: at, ExitLayer: exitLayer})
}

// Dropped records the sample being shed for the given reason.
func (l *Ledger) Dropped(id int64, at float64, reason Reason) {
	l.record(id, Event{Kind: KindDropped, At: at, Reason: reason})
}

// Samples reports how many distinct sample IDs have events.
func (l *Ledger) Samples() int {
	if l == nil {
		return 0
	}
	return len(l.order)
}

// Events returns the recorded events for one sample (nil if unknown).
func (l *Ledger) Events(id int64) []Event {
	if l == nil {
		return nil
	}
	return l.events[id]
}

// StageFlow tallies one stage's traffic for the balance check.
type StageFlow struct {
	// In counts batched samples dispatched into the stage.
	In int
	// Completed and Dropped count terminal outcomes attributed to the
	// stage (the sample's last dispatch before terminating).
	Completed int
	Dropped   int
	// Forwarded counts samples dispatched onward to a later stage.
	Forwarded int
}

// maxViolations bounds the report so a systemic bug doesn't balloon memory.
const maxViolations = 64

// Report is the outcome of a conservation audit.
type Report struct {
	// Samples is the number of distinct samples: all detail-tracked
	// samples for an exhaustive ledger, the exact population arrival
	// count for a sampled one.
	Samples int
	// Tracked is the number of samples audited in per-event detail
	// (== Samples for an exhaustive ledger).
	Tracked int
	// Stride is the detail-sampling stride the ledger ran with (1 =
	// exhaustive).
	Stride int64
	// Completed and Dropped count terminal outcomes, exact for the whole
	// population in both modes.
	Completed int
	Dropped   int
	// ByReason breaks Dropped down by classified reason.
	ByReason map[Reason]int
	// Stages maps stage index → in/out tallies.
	Stages map[int]*StageFlow
	// Violations lists human-readable invariant failures (capped).
	Violations []string
	// truncated counts violations beyond the cap.
	truncated int
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 && r.truncated == 0 }

// Err returns nil when OK, else an error summarizing the violations.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	n := len(r.Violations) + r.truncated
	return fmt.Errorf("audit: %d conservation violation(s); first: %s", n, r.Violations[0])
}

func (r *Report) addViolation(format string, args ...any) {
	if len(r.Violations) >= maxViolations {
		r.truncated++
		return
	}
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Violate appends an externally detected invariant violation to the
// report — the hook sibling subsystems (telemetry span reconciliation,
// collector cross-checks) use to fold their findings into the one audit
// verdict the -audit drivers act on.
func (r *Report) Violate(format string, args ...any) {
	r.addViolation(format, args...)
}

// CrossCheck asserts the ledger's terminal totals against an external
// accounting (the collector's Served+Violations and Dropped counters).
func (r *Report) CrossCheck(completed, dropped int) {
	if r.Completed != completed {
		r.addViolation("ledger completed %d, collector served+violated %d", r.Completed, completed)
	}
	if r.Dropped != dropped {
		r.addViolation("ledger dropped %d, collector dropped %d", r.Dropped, dropped)
	}
}

// String renders a one-line summary plus any violations.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d samples, %d completed, %d dropped", r.Samples, r.Completed, r.Dropped)
	if r.Stride > 1 {
		fmt.Fprintf(&b, " [sampled: every %dth of %d audited in detail, totals exact]", r.Stride, r.Tracked)
	}
	if len(r.ByReason) > 0 {
		reasons := make([]string, 0, len(r.ByReason))
		for reason := range r.ByReason {
			reasons = append(reasons, string(reason))
		}
		sort.Strings(reasons)
		parts := make([]string, len(reasons))
		for i, reason := range reasons {
			parts[i] = fmt.Sprintf("%s=%d", reason, r.ByReason[Reason(reason)])
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, " "))
	}
	if r.OK() {
		b.WriteString("; conservation OK")
		return b.String()
	}
	fmt.Fprintf(&b, "; %d violation(s):", len(r.Violations)+r.truncated)
	for _, v := range r.Violations {
		b.WriteString("\n  " + v)
	}
	if r.truncated > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more", r.truncated)
	}
	return b.String()
}

func knownReason(reason Reason) bool {
	switch reason {
	case ReasonAdmission, ReasonStaleShed, ReasonSLAFlush:
		return true
	}
	return false
}

// Verify walks every tracked sample and checks the conservation
// invariants, returning a report with per-stage tallies. A nil ledger
// verifies vacuously (an empty, OK report).
func (l *Ledger) Verify() *Report {
	r := &Report{ByReason: make(map[Reason]int), Stages: make(map[int]*StageFlow), Stride: 1}
	if l == nil {
		return r
	}
	r.Stride = l.stride
	r.Tracked = len(l.order)
	if l.stride > 1 {
		// Sampled mode: population totals come from the exact O(1)
		// counters; per-sample invariants below cover the tracked subset.
		r.Samples = l.arrivedTotal
	} else {
		r.Samples = len(l.order)
	}
	r.Completed = l.completedTotal
	r.Dropped = l.droppedTotal
	for reason, n := range l.byReasonTotal {
		r.ByReason[reason] = n
	}
	stage := func(si int) *StageFlow {
		f := r.Stages[si]
		if f == nil {
			f = &StageFlow{}
			r.Stages[si] = f
		}
		return f
	}
	for _, id := range l.order {
		evs := l.events[id]
		terminals := 0
		lastStage := -1 // last stage the sample was dispatched into
		prevAt := 0.0
		for i, e := range evs {
			if i > 0 && e.At < prevAt {
				r.addViolation("sample %d: %s at t=%v before prior event at t=%v", id, e.Kind, e.At, prevAt)
			}
			prevAt = e.At
			if e.Kind == KindArrived && i != 0 {
				r.addViolation("sample %d: arrival is event #%d, want first", id, i+1)
			}
			switch e.Kind {
			case KindCompleted, KindDropped:
				terminals++
				if i != len(evs)-1 {
					r.addViolation("sample %d: terminal %s followed by %d more event(s)", id, e.Kind, len(evs)-1-i)
				}
			case KindDispatched:
				if e.Stage < lastStage {
					r.addViolation("sample %d: dispatched to stage %d after stage %d", id, e.Stage, lastStage)
				}
				if lastStage >= 0 && e.Stage > lastStage {
					stage(lastStage).Forwarded++
				}
				stage(e.Stage).In++
				lastStage = e.Stage
			}
			if e.Kind == KindDropped && !knownReason(e.Reason) {
				r.addViolation("sample %d: drop reason %q unclassified", id, e.Reason)
			}
		}
		switch {
		case terminals == 0:
			r.addViolation("sample %d: no terminal event (%d event(s), last %s at t=%v)",
				id, len(evs), evs[len(evs)-1].Kind, evs[len(evs)-1].At)
		case terminals > 1:
			r.addViolation("sample %d: %d terminal events, want exactly 1", id, terminals)
		}
		if terminals >= 1 {
			// Attribute the first terminal to the last dispatched stage.
			// (Population-level Completed/Dropped/ByReason totals come from
			// the O(1) counters, exact in both modes; the stage tallies
			// cover the detail-tracked subset.)
			for _, e := range evs {
				if e.Kind == KindCompleted {
					if lastStage >= 0 {
						stage(lastStage).Completed++
					}
					break
				}
				if e.Kind == KindDropped {
					if lastStage >= 0 {
						stage(lastStage).Dropped++
					}
					break
				}
			}
		}
	}
	// Per-stage balance: everything dispatched in must terminate there or
	// be forwarded onward. (Samples stuck mid-stage already violated the
	// terminal check; this catches tally drift in the accounting itself.)
	// Walk stages in index order, not map order: violations are report
	// output and must be byte-identical run to run.
	stageIdx := make([]int, 0, len(r.Stages))
	for si := range r.Stages {
		stageIdx = append(stageIdx, si)
	}
	sort.Ints(stageIdx)
	for _, si := range stageIdx {
		f := r.Stages[si]
		if out := f.Completed + f.Dropped + f.Forwarded; out != f.In {
			r.addViolation("stage %d: in %d ≠ out %d (completed %d + dropped %d + forwarded %d)",
				si, f.In, out, f.Completed, f.Dropped, f.Forwarded)
		}
	}
	return r
}

// Totals reports the population-exact terminal counters in O(1), without
// running a full verification — the flight recorder's ledger snapshot and
// other live views read these. Exact in both exhaustive and sampled modes.
func (l *Ledger) Totals() (arrived, completed, dropped int) {
	if l == nil {
		return 0, 0, 0
	}
	return l.arrivedTotal, l.completedTotal, l.droppedTotal
}

// DropBreakdown returns drops per classified reason without running a full
// verification (for live stats endpoints). The counts are population-exact
// in both exhaustive and sampled modes (maintained as O(1) counters, so
// this no longer walks the event store).
func (l *Ledger) DropBreakdown() map[Reason]int {
	out := make(map[Reason]int)
	if l == nil {
		return out
	}
	for reason, n := range l.byReasonTotal {
		out[reason] = n
	}
	return out
}

// Digest renders every tracked sample's event sequence plus the exact
// population totals as a canonical string. Two runs are behaviorally
// identical exactly when their digests are byte-identical — the property
// the pooled-vs-unpooled determinism tests and the simgate check assert.
func (l *Ledger) Digest() string {
	var b strings.Builder
	if l == nil {
		return ""
	}
	fmt.Fprintf(&b, "totals arrived=%d completed=%d dropped=%d", l.arrivedTotal, l.completedTotal, l.droppedTotal)
	reasons := make([]string, 0, len(l.byReasonTotal))
	for reason := range l.byReasonTotal {
		reasons = append(reasons, string(reason))
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(&b, " %s=%d", reason, l.byReasonTotal[Reason(reason)])
	}
	b.WriteByte('\n')
	for _, id := range l.order {
		fmt.Fprintf(&b, "%d:", id)
		for _, e := range l.events[id] {
			fmt.Fprintf(&b, " %s@%v", e.Kind, e.At)
			if e.Kind == KindDispatched {
				fmt.Fprintf(&b, "(s%d,i%d)", e.Stage, e.Instance)
			}
			if e.Kind == KindMerged {
				fmt.Fprintf(&b, "(s%d)", e.Stage)
			}
			if e.Kind == KindCompleted {
				fmt.Fprintf(&b, "(x%d)", e.ExitLayer)
			}
			if e.Kind == KindDropped {
				fmt.Fprintf(&b, "(%s)", e.Reason)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
