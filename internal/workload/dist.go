// Package workload generates inference inputs. Each sample carries a latent
// difficulty in [0,1] — the only property of an input that matters to an
// early-exit serving system, because it determines how deep the input
// travels before a ramp's confidence test passes. Dataset presets encode
// the exit behaviour the paper reports for GLUE, ImageNet, WMT, SAMSum and
// BoolQ; mixes recreate the 80/20, 50/50 and 20/80 easy:hard workloads of
// §5.4.
package workload

import (
	"math"
	"math/rand"
)

// Dist draws difficulties in [0,1].
type Dist interface {
	// Sample draws one difficulty using the provided source.
	Sample(rng *rand.Rand) float64
	// Mean returns the analytic mean difficulty.
	Mean() float64
}

// Beta is a Beta(α,β) difficulty distribution.
type Beta struct {
	Alpha, Beta float64
}

// Sample draws via two Marsaglia–Tsang gamma variates.
func (b Beta) Sample(rng *rand.Rand) float64 {
	x := gammaSample(rng, b.Alpha)
	y := gammaSample(rng, b.Beta)
	if x+y == 0 {
		return 0.5
	}
	v := x / (x + y)
	// Clamp away from the exact endpoints so downstream logs/ratios are safe.
	return math.Min(math.Max(v, 1e-9), 1-1e-9)
}

// Mean is α/(α+β).
func (b Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang, with the boost
// trick for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("workload: gamma shape must be positive")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Mixture draws from components with the given weights.
type Mixture struct {
	Components []Dist
	Weights    []float64
}

// Sample picks a component by weight, then samples it.
func (m Mixture) Sample(rng *rand.Rand) float64 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u <= acc {
			return m.Components[i].Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

// Mean is the weight-averaged component mean.
func (m Mixture) Mean() float64 {
	total, sum := 0.0, 0.0
	for i, w := range m.Weights {
		total += w
		sum += w * m.Components[i].Mean()
	}
	if total == 0 {
		return 0
	}
	return sum / total
}

// Constant always returns the same difficulty; useful in tests.
type Constant float64

// Sample returns the constant.
func (c Constant) Sample(*rand.Rand) float64 { return float64(c) }

// Mean returns the constant.
func (c Constant) Mean() float64 { return float64(c) }

// Easy and Hard are the building blocks of the paper's workload mixes:
// easy inputs exit in the first third of a model, hard ones mostly run to
// completion.
var (
	easyDist Dist = Beta{Alpha: 1.8, Beta: 5.0}
	hardDist Dist = Beta{Alpha: 6.0, Beta: 1.6}
)

// Mix builds the §5.4 workloads: easyFrac of inputs drawn from the easy
// pool, the rest from the hard pool.
func Mix(easyFrac float64) Dist {
	if easyFrac < 0 || easyFrac > 1 {
		panic("workload: easyFrac outside [0,1]")
	}
	return Mixture{
		Components: []Dist{easyDist, hardDist},
		Weights:    []float64{easyFrac, 1 - easyFrac},
	}
}

// Dataset presets. Shapes are calibrated so that, under each model's
// default exit policy, the exit fractions match the paper's reports (see
// the calibration tests in the ee package).

// SST2 is the GLUE sentiment task: roughly half of inputs exit by the
// middle of BERT at entropy 0.4 (Figure 3).
func SST2() Dist { return Beta{Alpha: 2.1, Beta: 2.3} }

// QNLI is the GLUE QA-entailment task, slightly harder than SST-2.
func QNLI() Dist { return Beta{Alpha: 2.4, Beta: 2.1} }

// ImageNet drives the BranchyNet ResNet-50 experiments.
func ImageNet() Dist { return Beta{Alpha: 2.0, Beta: 2.6} }

// WMT models per-token difficulty for CALM translation: ~70% of tokens
// exit by decoder layer 2 of 8 (§5.1.3).
func WMT() Dist { return Beta{Alpha: 1.0, Beta: 4.2} }

// SAMSum models per-token difficulty for CALM summarization.
func SAMSum() Dist { return Beta{Alpha: 1.0, Beta: 4.0} }

// BoolQ models Llama-3.1-8B yes/no answering: ~50% of inputs exit by layer
// 25 of 32 (§5.1.3).
func BoolQ() Dist { return Beta{Alpha: 3.8, Beta: 1.25} }
