package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func empiricalMean(d Dist, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	return sum / float64(n)
}

func empiricalCDF(d Dist, x float64, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	c := 0
	for i := 0; i < n; i++ {
		if d.Sample(rng) <= x {
			c++
		}
	}
	return float64(c) / float64(n)
}

func TestBetaMeanMatchesAnalytic(t *testing.T) {
	cases := []Beta{{2, 2}, {1, 4.2}, {3.8, 1.25}, {0.5, 0.5}, {5, 1}}
	for _, b := range cases {
		got := empiricalMean(b, 40000, 1)
		want := b.Mean()
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Beta(%v,%v) empirical mean %v, analytic %v", b.Alpha, b.Beta, got, want)
		}
	}
}

func TestBetaRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(ra, rb uint8) bool {
		a := 0.3 + float64(ra%40)/10
		b := 0.3 + float64(rb%40)/10
		d := Beta{a, b}
		for i := 0; i < 50; i++ {
			v := d.Sample(rng)
			if v <= 0 || v >= 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive gamma shape did not panic")
		}
	}()
	gammaSample(rand.New(rand.NewSource(1)), 0)
}

func TestMixtureMean(t *testing.T) {
	m := Mixture{Components: []Dist{Constant(0.2), Constant(0.8)}, Weights: []float64{3, 1}}
	if got := m.Mean(); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("mixture mean = %v, want 0.35", got)
	}
	got := empiricalMean(m, 20000, 2)
	if math.Abs(got-0.35) > 0.01 {
		t.Errorf("mixture empirical mean = %v, want 0.35", got)
	}
}

func TestMixWeights(t *testing.T) {
	// An 80% easy mix must be much easier than a 20% easy mix.
	easy := empiricalMean(Mix(0.8), 20000, 4)
	hard := empiricalMean(Mix(0.2), 20000, 5)
	if easy >= hard {
		t.Errorf("Mix(0.8) mean %v not easier than Mix(0.2) mean %v", easy, hard)
	}
	if easy > 0.45 {
		t.Errorf("80/20 mix mean %v, want < 0.45 (mostly-easy)", easy)
	}
	if hard < 0.55 {
		t.Errorf("20/80 mix mean %v, want > 0.55 (mostly-hard)", hard)
	}
}

func TestMixPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mix(1.5) did not panic")
		}
	}()
	Mix(1.5)
}

func TestWMTCalibration(t *testing.T) {
	// ~70% of WMT tokens must sit below difficulty 0.25 (exit by decoder
	// layer 2 of 8 under CALM's default threshold).
	got := empiricalCDF(WMT(), 0.25, 40000, 6)
	if got < 0.62 || got > 0.78 {
		t.Errorf("P(WMT difficulty ≤ 0.25) = %v, want ~0.70", got)
	}
}

func TestBoolQCalibration(t *testing.T) {
	// ~50% of BoolQ inputs exit by layer 25/32 → difficulty ≤ 0.781.
	got := empiricalCDF(BoolQ(), 25.0/32.0, 40000, 7)
	if got < 0.40 || got > 0.60 {
		t.Errorf("P(BoolQ difficulty ≤ 25/32) = %v, want ~0.50", got)
	}
}

func TestGLUECalibration(t *testing.T) {
	// Roughly half of SST-2/QNLI inputs exit by mid-model (Figure 3).
	for name, d := range map[string]Dist{"sst2": SST2(), "qnli": QNLI()} {
		got := empiricalCDF(d, 0.5, 40000, 8)
		if got < 0.35 || got > 0.65 {
			t.Errorf("P(%s ≤ 0.5) = %v, want ~0.5", name, got)
		}
	}
	// QNLI is the harder task.
	if QNLI().Mean() <= SST2().Mean() {
		t.Error("QNLI should be harder than SST-2")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(SST2(), 42)
	b := NewGenerator(SST2(), 42)
	for i := 0; i < 100; i++ {
		sa := a.Next(1, 0.1)
		sb := b.Next(1, 0.1)
		if sa != sb {
			t.Fatalf("generator not deterministic at %d: %+v vs %+v", i, sa, sb)
		}
	}
}

func TestGeneratorIDsAndDeadlines(t *testing.T) {
	g := NewGenerator(Constant(0.5), 1)
	s1 := g.Next(10, 0.1)
	s2 := g.Next(11, 0.1)
	if s1.ID != 1 || s2.ID != 2 {
		t.Errorf("IDs = %d,%d, want 1,2", s1.ID, s2.ID)
	}
	if s1.Deadline != 10.1 {
		t.Errorf("deadline = %v, want 10.1", s1.Deadline)
	}
}

func TestGeneratorBatch(t *testing.T) {
	g := NewGenerator(Constant(0.3), 1)
	b := g.Batch(8, 5, 0.1)
	if len(b) != 8 {
		t.Fatalf("batch len = %d", len(b))
	}
	for i, s := range b {
		if s.Arrival != 5 || s.Difficulty != 0.3 {
			t.Errorf("sample %d = %+v", i, s)
		}
	}
}

func TestSwitchDist(t *testing.T) {
	g := NewGenerator(Constant(0.1), 1)
	if s := g.Next(0, 1); s.Difficulty != 0.1 {
		t.Fatalf("pre-switch difficulty %v", s.Difficulty)
	}
	g.SwitchDist(Constant(0.9))
	if s := g.Next(0, 1); s.Difficulty != 0.9 {
		t.Fatalf("post-switch difficulty %v", s.Difficulty)
	}
}
