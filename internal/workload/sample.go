package workload

import (
	"math/rand"

	"e3/internal/audit"
	"e3/internal/telemetry"
)

// Sample is one inference request.
type Sample struct {
	ID         int64
	Difficulty float64
	// Arrival is the virtual time the request entered the system.
	Arrival float64
	// Deadline is Arrival + SLO; the serving layer drops samples it cannot
	// finish by then.
	Deadline float64
}

// Generator mints samples from a difficulty distribution with sequential
// IDs. It is deterministic for a fixed seed.
type Generator struct {
	dist   Dist
	rng    *rand.Rand
	next   int64
	ledger *audit.Ledger
	tracer *telemetry.Tracer
}

// NewGenerator builds a seeded generator.
func NewGenerator(dist Dist, seed int64) *Generator {
	return &Generator{dist: dist, rng: rand.New(rand.NewSource(seed))}
}

// SetAudit attaches a lifecycle ledger; every minted sample records an
// arrival event. A nil ledger disables recording.
func (g *Generator) SetAudit(l *audit.Ledger) { g.ledger = l }

// SetTrace attaches a span tracer; every minted sample counts an arrive
// event so span counts can reconcile with the ledger. A nil tracer
// disables recording.
func (g *Generator) SetTrace(t *telemetry.Tracer) { g.tracer = t }

// Next mints one sample arriving at the given time with the given SLO.
func (g *Generator) Next(arrival, slo float64) Sample {
	g.next++
	g.ledger.Arrived(g.next, arrival)
	g.tracer.Arrive(arrival)
	return Sample{
		ID:         g.next,
		Difficulty: g.dist.Sample(g.rng),
		Arrival:    arrival,
		Deadline:   arrival + slo,
	}
}

// Batch mints n samples that all arrive at the given time (closed-loop
// clients always have a full batch waiting, §4).
func (g *Generator) Batch(n int, arrival, slo float64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = g.Next(arrival, slo)
	}
	return out
}

// SwitchDist changes the difficulty distribution mid-stream, modelling the
// workload shifts of §5.4 (80/20 → 50/50 → 20/80).
func (g *Generator) SwitchDist(d Dist) { g.dist = d }
