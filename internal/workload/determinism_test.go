package workload

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"e3/internal/trace"
)

// encodeSamples serializes a sample stream to bytes so reproducibility is
// asserted bit-for-bit, not merely to within float tolerance: the
// seededrand invariant promises byte-identical traces for a fixed seed,
// and an epsilon-equal comparison would hide a drifting source.
func encodeSamples(samples []Sample) []byte {
	var buf bytes.Buffer
	for _, s := range samples {
		binary.Write(&buf, binary.LittleEndian, s.ID)
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(s.Difficulty))
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(s.Arrival))
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(s.Deadline))
	}
	return buf.Bytes()
}

// generate mints a workload that exercises every stochastic path: a
// mixture draw per sample, a mid-stream distribution switch (§5.4's
// 80/20 → 20/80 shift), and both Next and Batch minting.
func generate(seed int64) []Sample {
	g := NewGenerator(Mix(0.8), seed)
	var out []Sample
	for i := 0; i < 500; i++ {
		out = append(out, g.Next(float64(i)*0.01, 0.1))
	}
	g.SwitchDist(Mix(0.2))
	out = append(out, g.Batch(500, 5.0, 0.1)...)
	return out
}

// TestSameSeedByteIdentical is the reproducibility regression the
// seededrand analyzer enforces statically: two generators with the same
// seed and config must produce byte-identical sample streams. If any
// stage of workload generation starts drawing from the global math/rand
// source (or any other per-process state), this fails.
func TestSameSeedByteIdentical(t *testing.T) {
	a := encodeSamples(generate(42))
	b := encodeSamples(generate(42))
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed workload runs diverged: %d vs %d bytes, first diff at %d",
			len(a), len(b), firstDiff(a, b))
	}
	// Different seeds must actually differ, or the equality above proves
	// nothing about the generator.
	c := encodeSamples(generate(43))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical streams; the seed is not reaching the source")
	}
}

// TestSameSeedArrivalTraces extends the guarantee to the arrival-process
// generators the benchmarks drive workloads with.
func TestSameSeedArrivalTraces(t *testing.T) {
	mk := func(seed int64) []byte {
		var buf bytes.Buffer
		for _, at := range trace.Poisson(200, 10, seed) {
			binary.Write(&buf, binary.LittleEndian, math.Float64bits(at))
		}
		for _, at := range trace.Bursty(trace.DefaultBursty(200), 10, seed) {
			binary.Write(&buf, binary.LittleEndian, math.Float64bits(at))
		}
		return buf.Bytes()
	}
	if !bytes.Equal(mk(7), mk(7)) {
		t.Fatal("same-seed arrival traces diverged")
	}
	if bytes.Equal(mk(7), mk(8)) {
		t.Fatal("different-seed arrival traces identical")
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
