package workload

import "math/bits"

// BatchPool recycles []Sample backing arrays through the data plane's
// batcher → runner path. The serving contract ("the runner owns the
// samples from then on") makes a batch slice dead the moment the runner
// has copied its samples onward — completions and survivors are value
// copies — so the runner returns it here and the batcher's next dispatch
// reuses it instead of allocating. At paper-trace scale (9000 req/s × 1 h)
// this removes one allocation plus one GC-visible retained array per
// formed batch.
//
// The pool is a set of per-size-class LIFO free lists: no sync.Pool, no
// randomness — recycling must never perturb the event loop's determinism,
// and the simulator is single-goroutine by contract (the eventloop
// analyzer enforces it). Class c holds slices whose capacity is in
// [2^c, 2^(c+1)), so Get(n) pops from the first non-empty class that
// guarantees capacity ≥ n in O(classes) instead of scanning a flat list
// that small survivor slices would otherwise clog. Get always returns a
// fully-overwritten slice of exactly the requested length, so pooled and
// unpooled runs are byte-identical; Put zeroes the slice so recycled
// arrays never keep already-served samples alive.
//
// Like audit.Ledger and telemetry.Tracer, a nil *BatchPool is valid and
// pools nothing: call sites thread it unconditionally and pay a single
// nil check when pooling is off.
//
// Ownership: a pool belongs to exactly ONE event loop — the engine whose
// batchers and runners recycle through it — the same way the engine's
// event heap does. Nothing here is synchronized (deliberately: see
// above), so handing one pool to two engines, or moving a buffer Put on
// one loop to a Get on another, is a data race the moment those loops
// run on different goroutines. The fleet tier runs one engine per shard
// in parallel and therefore builds one pool per shard at construction;
// its ownership regression test pins that two shards never exchange
// pooled buffers.
type BatchPool struct {
	classes [poolClasses][][]Sample

	// gets/hits count Get calls and how many were served from a free
	// list, for benchmark reporting.
	gets, hits uint64
}

const (
	// poolClasses covers capacities 1 .. 4096; larger slices bypass the
	// pool (batches never approach that size).
	poolClasses = 13
	// maxPooledPerClass bounds each class so a transient burst cannot pin
	// unbounded memory; beyond it Put discards (the GC reclaims as before).
	maxPooledPerClass = 64
)

// classCeil is the smallest class whose every slice has capacity ≥ n.
func classCeil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// classFloor is the class a slice of capacity c files under.
func classFloor(c int) int {
	return bits.Len(uint(c)) - 1
}

// NewBatchPool returns an empty pool.
func NewBatchPool() *BatchPool { return &BatchPool{} }

// Get returns a length-n sample slice, recycled when possible. The
// contents are unspecified — callers must overwrite all n entries (every
// call site copy-fills or append-fills the slice it dispatches). A nil
// pool allocates.
//
//e3:hotpath runs once per dispatched batch; the free-list hit path must not allocate
func (p *BatchPool) Get(n int) []Sample {
	if p == nil || n < 1 || n > 1<<(poolClasses-1) {
		return make([]Sample, n) //e3:alloc nil-pool and out-of-class sizes fall back to the allocator by contract
	}
	p.gets++
	for c := classCeil(n); c < poolClasses; c++ {
		if k := len(p.classes[c]); k > 0 {
			s := p.classes[c][k-1][:n]
			p.classes[c][k-1] = nil
			p.classes[c] = p.classes[c][:k-1]
			p.hits++
			return s
		}
	}
	return make([]Sample, n) //e3:alloc pool miss must allocate; steady state hits the free list
}

// Put returns a slice's backing array to the pool, zeroing it first so
// flushed samples do not linger. Nil pools, empty-capacity slices, and
// beyond-class-range slices are no-ops. The caller must not retain any
// alias of s after Put.
//
//e3:hotpath runs once per retired batch; zero-and-stash must not allocate
func (p *BatchPool) Put(s []Sample) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = Sample{}
	}
	c := classFloor(cap(s))
	if c >= poolClasses || len(p.classes[c]) >= maxPooledPerClass {
		return
	}
	p.classes[c] = append(p.classes[c], s)
}

// Stats reports Get calls and free-list hits since creation.
func (p *BatchPool) Stats() (gets, hits uint64) {
	if p == nil {
		return 0, 0
	}
	return p.gets, p.hits
}
