package workload

import "testing"

func TestBatchPoolRecyclesAndZeroes(t *testing.T) {
	p := NewBatchPool()
	a := p.Get(8)
	for i := range a {
		a[i] = Sample{ID: int64(i + 1), Difficulty: 0.5, Arrival: 1, Deadline: 2}
	}
	backing := &a[0]
	p.Put(a)
	// The pooled backing array must be zeroed: already-served samples must
	// not stay reachable through the pool.
	for i, s := range a[:cap(a)] {
		if s != (Sample{}) {
			t.Fatalf("pooled slot %d not zeroed: %+v", i, s)
		}
	}
	b := p.Get(8)
	if &b[0] != backing {
		t.Fatal("Get did not recycle the returned backing array")
	}
	gets, hits := p.Stats()
	if gets != 2 || hits != 1 {
		t.Fatalf("stats = (%d gets, %d hits), want (2, 1)", gets, hits)
	}
}

func TestBatchPoolGetExactLength(t *testing.T) {
	p := NewBatchPool()
	p.Put(make([]Sample, 16))
	s := p.Get(5)
	if len(s) != 5 {
		t.Fatalf("len = %d, want 5", len(s))
	}
	if cap(s) < 16 {
		t.Fatalf("cap = %d, want recycled 16", cap(s))
	}
}

func TestBatchPoolTooSmallSlicesSkipped(t *testing.T) {
	p := NewBatchPool()
	p.Put(make([]Sample, 2))
	s := p.Get(8)
	if len(s) != 8 {
		t.Fatalf("len = %d, want 8", len(s))
	}
	_, hits := p.Stats()
	if hits != 0 {
		t.Fatalf("hits = %d, want 0 (2-cap slice cannot serve an 8-slice Get)", hits)
	}
}

func TestBatchPoolNilSafe(t *testing.T) {
	var p *BatchPool
	s := p.Get(4)
	if len(s) != 4 {
		t.Fatalf("nil pool Get len = %d, want 4", len(s))
	}
	p.Put(s) // must not panic
	if g, h := p.Stats(); g != 0 || h != 0 {
		t.Fatalf("nil pool stats = (%d, %d), want zeros", g, h)
	}
}

func TestBatchPoolBounded(t *testing.T) {
	p := NewBatchPool()
	for i := 0; i < maxPooledPerClass+50; i++ {
		p.Put(make([]Sample, 1))
	}
	if got := len(p.classes[0]); got != maxPooledPerClass {
		t.Fatalf("class 0 free list %d, want capped at %d", got, maxPooledPerClass)
	}
	// Oversized slices bypass the pool entirely.
	p.Put(make([]Sample, 1<<poolClasses))
	for c, class := range p.classes {
		for _, s := range class {
			if cap(s) >= 1<<poolClasses {
				t.Fatalf("oversized slice pooled in class %d", c)
			}
		}
	}
}

func TestBatchPoolSizeClasses(t *testing.T) {
	p := NewBatchPool()
	// A flood of tiny survivor slices must not prevent a larger Get from
	// finding its match: classes keep them segregated.
	for i := 0; i < maxPooledPerClass; i++ {
		p.Put(make([]Sample, 2))
	}
	big := make([]Sample, 8)
	p.Put(big)
	s := p.Get(8)
	if cap(s) < 8 {
		t.Fatalf("cap = %d, want the recycled 8-cap array", cap(s))
	}
	_, hits := p.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}
