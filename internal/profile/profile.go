// Package profile represents batch-size profiles: how a fresh batch decays
// through an EE model's layers as samples exit. Profiles come from
// measurement (Monte-Carlo or live observation) or from the ARIMA
// forecaster, and feed E3's optimizer (§3.1–3.2).
package profile

import (
	"fmt"
	"math/rand"

	"e3/internal/ee"
)

// Batch is a survival profile over an L-layer model. Survival[k] (1-based,
// k ∈ [1, L]) is the expected fraction of a fresh batch still active when
// layer k begins; Survival[1] == 1 by construction.
type Batch struct {
	L        int
	Survival []float64 // index 0 unused; [1..L]
}

// NewBatch builds a profile from a survival curve of length L (entering
// layers 1..L), normalizing and clamping it to a valid shape.
func NewBatch(survival []float64) Batch {
	l := len(survival)
	b := Batch{L: l, Survival: make([]float64, l+1)}
	copy(b.Survival[1:], survival)
	b.clamp()
	return b
}

// clamp enforces Survival[1]=1, values in [0,1], monotone non-increasing.
func (b *Batch) clamp() {
	if b.L == 0 {
		return
	}
	b.Survival[1] = 1
	prev := 1.0
	for k := 2; k <= b.L; k++ {
		v := b.Survival[k]
		if v > prev {
			v = prev
		}
		if v < 0 {
			v = 0
		}
		b.Survival[k] = v
		prev = v
	}
}

// FromDifficulties builds the exact profile of a concrete set of inputs.
func FromDifficulties(m *ee.EEModel, diffs []float64) Batch {
	L := m.Base.NumLayers()
	surv := make([]float64, L)
	if len(diffs) == 0 {
		for k := range surv {
			surv[k] = 1
		}
		return NewBatch(surv)
	}
	counts := make([]int, L+2)
	for _, d := range diffs {
		counts[m.ExitLayerFor(d)]++
	}
	alive := len(diffs)
	for k := 1; k <= L; k++ {
		surv[k-1] = float64(alive) / float64(len(diffs))
		alive -= counts[k]
	}
	return NewBatch(surv)
}

// FromDist estimates the profile of a difficulty distribution by drawing n
// samples with a fixed seed.
func FromDist(m *ee.EEModel, dist interface {
	Sample(*rand.Rand) float64
}, n int, seed int64) Batch {
	rng := rand.New(rand.NewSource(seed))
	diffs := make([]float64, n)
	for i := range diffs {
		diffs[i] = dist.Sample(rng)
	}
	return FromDifficulties(m, diffs)
}

// At returns the survival fraction entering layer k (1-based). Layers past
// the end return 0.
func (b Batch) At(k int) float64 {
	if k < 1 {
		return 1
	}
	if k > b.L {
		return 0
	}
	return b.Survival[k]
}

// After returns the survival fraction after layer k finishes and its ramp
// (if any) has fired — i.e. entering layer k+1.
func (b Batch) After(k int) float64 { return b.At(k + 1) }

// BatchAt scales the profile to a concrete input batch size.
func (b Batch) BatchAt(k, b0 int) float64 { return b.At(k) * float64(b0) }

// ExitFracAt returns the fraction of a fresh batch exiting exactly at the
// ramp after layer k.
func (b Batch) ExitFracAt(k int) float64 { return b.At(k) - b.After(k) }

// MaxAbsDiff is the largest pointwise survival difference between two
// profiles over the same model — the drift metric the scheduler monitors
// to trigger re-planning (§3.1).
func (b Batch) MaxAbsDiff(other Batch) float64 {
	if b.L != other.L {
		return 1
	}
	max := 0.0
	for k := 1; k <= b.L; k++ {
		d := b.Survival[k] - other.Survival[k]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// WithError returns a copy whose post-entry survival values are scaled by
// (1+err) and re-clamped; the Figure 22 sensitivity experiment injects
// prediction error this way.
func (b Batch) WithError(err float64) Batch {
	surv := make([]float64, b.L)
	for k := 1; k <= b.L; k++ {
		surv[k-1] = b.Survival[k] * (1 + err)
	}
	return NewBatch(surv)
}

// String renders the survival curve compactly for logs.
func (b Batch) String() string {
	out := "profile["
	for k := 1; k <= b.L; k++ {
		if k > 1 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", b.Survival[k])
	}
	return out + "]"
}
