package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"e3/internal/ee"
	"e3/internal/model"
	"e3/internal/workload"
)

func TestFromDifficultiesExact(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	// Exit layers: 0.12→2, 0.5→6, 0.99→12, 0.99→12.
	p := FromDifficulties(m, []float64{0.12, 0.5, 0.99, 0.99})
	if p.At(1) != 1 {
		t.Errorf("At(1) = %v, want 1", p.At(1))
	}
	if got := p.At(3); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("At(3) = %v, want 0.75", got)
	}
	if got := p.At(7); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(7) = %v, want 0.5", got)
	}
	if got := p.At(12); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(12) = %v, want 0.5 (final-layer samples stay active)", got)
	}
	if got := p.At(13); got != 0 {
		t.Errorf("At(L+1) = %v, want 0", got)
	}
}

func TestExitFracSumsToOne(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	p := FromDist(m, workload.Mix(0.5), 5000, 1)
	sum := 0.0
	for k := 1; k <= p.L-1; k++ {
		sum += p.ExitFracAt(k)
	}
	// Remaining mass exits at the final layer: survival entering L.
	sum += p.At(p.L)
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("exit fractions sum to %v, want 1", sum)
	}
}

func TestEmptyDifficultiesIsAllSurvive(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	p := FromDifficulties(m, nil)
	for k := 1; k <= p.L; k++ {
		if p.At(k) != 1 {
			t.Fatalf("empty profile At(%d) = %v, want 1", k, p.At(k))
		}
	}
}

func TestClampEnforcesShape(t *testing.T) {
	// Deliberately malformed curve: rises, exceeds 1, goes negative.
	p := NewBatch([]float64{0.5, 1.2, 0.8, 0.9, -0.3, 0.4})
	if p.At(1) != 1 {
		t.Errorf("Survival[1] = %v, want forced to 1", p.At(1))
	}
	prev := 1.0
	for k := 1; k <= p.L; k++ {
		v := p.At(k)
		if v > prev || v < 0 || v > 1 {
			t.Fatalf("clamped profile invalid at %d: %v (prev %v)", k, v, prev)
		}
		prev = v
	}
}

func TestEasierWorkloadDecaysFaster(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	easy := FromDist(m, workload.Mix(0.8), 8000, 2)
	hard := FromDist(m, workload.Mix(0.2), 8000, 3)
	if easy.At(6) >= hard.At(6) {
		t.Errorf("easy survival at 6 (%v) not below hard (%v)", easy.At(6), hard.At(6))
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewBatch([]float64{1, 0.8, 0.6, 0.4})
	b := NewBatch([]float64{1, 0.7, 0.6, 0.5})
	if got := a.MaxAbsDiff(b); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v, want 0.1", got)
	}
	if got := a.MaxAbsDiff(a); got != 0 {
		t.Errorf("self diff = %v", got)
	}
	c := NewBatch([]float64{1, 0.5})
	if got := a.MaxAbsDiff(c); got != 1 {
		t.Errorf("mismatched-length diff = %v, want 1", got)
	}
}

func TestWithErrorStillValid(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	p := FromDist(m, workload.Mix(0.5), 5000, 4)
	for _, e := range []float64{-1, -0.5, 0, 0.5, 1.0} {
		q := p.WithError(e)
		prev := 1.0
		for k := 1; k <= q.L; k++ {
			v := q.At(k)
			if v > prev+1e-12 || v < 0 || v > 1 {
				t.Fatalf("WithError(%v) invalid at layer %d: %v", e, k, v)
			}
			prev = v
		}
	}
	// Positive error over-predicts survival.
	if p.WithError(0.5).At(6) < p.At(6) {
		t.Error("positive error should raise survival")
	}
}

func TestBatchAt(t *testing.T) {
	p := NewBatch([]float64{1, 0.5, 0.25})
	if got := p.BatchAt(2, 16); got != 8 {
		t.Errorf("BatchAt(2,16) = %v, want 8", got)
	}
}

// Property: any random survival input clamps to a valid profile, and
// FromDifficulties always yields Survival[1]=1 with monotone decay.
func TestProfileValidityProperty(t *testing.T) {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	rng := rand.New(rand.NewSource(9))
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 128 {
			return true
		}
		diffs := make([]float64, len(raw))
		for i, r := range raw {
			diffs[i] = float64(r) / 65535
		}
		p := FromDifficulties(m, diffs)
		if p.At(1) != 1 {
			return false
		}
		prev := 1.0
		for k := 1; k <= p.L; k++ {
			if p.At(k) > prev+1e-12 {
				return false
			}
			prev = p.At(k)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	p := NewBatch([]float64{1, 0.5})
	if p.String() == "" {
		t.Error("empty String")
	}
}
