package slo

import (
	"math"
	"testing"
)

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestBudgetWindowMath(t *testing.T) {
	// Target 0.99: allowed bad fraction 0.01. A window with 980 served and
	// 20 bad burns at 2.0 and overspends the cumulative budget 2x.
	b := NewBudget(0.99, 2.0)
	wb := b.ObserveWindow(0, 980, 12, 8, 2.0)
	if !approx(wb.Attainment, 0.98) {
		t.Fatalf("attainment = %v, want 0.98", wb.Attainment)
	}
	if !approx(wb.BurnRate, 2.0) {
		t.Fatalf("burn rate = %v, want 2.0", wb.BurnRate)
	}
	if !approx(wb.BudgetUsed, 2.0) || !approx(wb.BudgetRemaining, -1.0) {
		t.Fatalf("used/remaining = %v/%v, want 2/-1", wb.BudgetUsed, wb.BudgetRemaining)
	}
	if !wb.Breached {
		t.Fatal("burn 2.0 must breach threshold 2.0")
	}
	if wb.ExhaustionIn != 0 {
		t.Fatalf("exhaustion = %v, want 0 (budget overspent)", wb.ExhaustionIn)
	}
}

func TestBudgetCleanWindowNeverExhausts(t *testing.T) {
	b := NewBudget(0.99, 2.0)
	wb := b.ObserveWindow(0, 1000, 0, 0, 2.0)
	if wb.Attainment != 1 || wb.BurnRate != 0 {
		t.Fatalf("clean window = %+v", wb)
	}
	if wb.ExhaustionIn != ExhaustionNever {
		t.Fatalf("exhaustion = %v, want the never sentinel", wb.ExhaustionIn)
	}
	if !approx(wb.BudgetRemaining, 1.0) {
		t.Fatalf("remaining = %v, want 1.0", wb.BudgetRemaining)
	}
}

func TestBudgetFastBurnBreachesAndProjectsExhaustion(t *testing.T) {
	b := NewBudget(0.99, 2.0)
	// Window 0 is clean and banks budget; window 1 burns at 5x.
	b.ObserveWindow(0, 1000, 0, 0, 2.0)
	wb := b.ObserveWindow(1, 950, 50, 0, 2.0)
	if !approx(wb.BurnRate, 5.0) {
		t.Fatalf("burn rate = %v, want 5.0", wb.BurnRate)
	}
	if !wb.Breached || b.Breaches() != 1 {
		t.Fatalf("breach not recorded: %+v, breaches=%d", wb, b.Breaches())
	}
	// Cumulative: 2000 outcomes, 50 bad, allowed 20 -> overspent already.
	if wb.BudgetRemaining >= 0 || wb.ExhaustionIn != 0 {
		t.Fatalf("overspent budget: remaining=%v exhaustion=%v", wb.BudgetRemaining, wb.ExhaustionIn)
	}
}

func TestBudgetExhaustionProjection(t *testing.T) {
	b := NewBudget(0.9, 2.0) // allowed bad fraction 0.1
	// Nine clean windows bank headroom, then a 20%-bad window burns at 2x.
	for w := 0; w < 9; w++ {
		b.ObserveWindow(w, 100, 0, 0, 1.0)
	}
	wb := b.ObserveWindow(9, 80, 20, 0, 1.0)
	if !approx(wb.BurnRate, 2.0) || !wb.Breached {
		t.Fatalf("burn = %v breached = %v, want 2.0/true", wb.BurnRate, wb.Breached)
	}
	// Headroom: allowed 0.1*1000 = 100, spent 20 -> 80 left. Net burn:
	// 20/s spent - 10/s accrued = 10/s -> exhaustion in 8 virtual seconds.
	if !approx(wb.ExhaustionIn, 8.0) {
		t.Fatalf("exhaustion = %v, want 8.0", wb.ExhaustionIn)
	}
}

func TestBudgetEmptyWindow(t *testing.T) {
	b := NewBudget(0.99, 2.0)
	wb := b.ObserveWindow(0, 0, 0, 0, 2.0)
	if wb.Attainment != 1 || wb.BurnRate != 0 || wb.Breached {
		t.Fatalf("empty window = %+v", wb)
	}
}

func TestBudgetDefaultsAndNil(t *testing.T) {
	b := NewBudget(0, -1)
	if b.Target() != DefaultTarget || b.BurnThreshold() != DefaultBurnThreshold {
		t.Fatalf("defaults = %v/%v", b.Target(), b.BurnThreshold())
	}
	var nb *Budget
	wb := nb.ObserveWindow(0, 10, 10, 10, 1.0)
	if wb.Attainment != 1 || wb.ExhaustionIn != ExhaustionNever {
		t.Fatalf("nil ObserveWindow = %+v", wb)
	}
	if nb.Windows() != 0 || nb.Breaches() != 0 || nb.Snapshot() != nil {
		t.Fatal("nil budget must be inert")
	}
	if last := nb.Last(); last.Attainment != 1 {
		t.Fatalf("nil Last = %+v", last)
	}
}

func TestBudgetSnapshot(t *testing.T) {
	b := NewBudget(0.99, 2.0)
	b.ObserveWindow(0, 990, 10, 0, 2.0)
	b.ObserveWindow(1, 900, 100, 0, 2.0)
	snap := b.Snapshot()
	if snap.Windows != 2 || snap.Served != 1890 || snap.Bad != 110 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Breaches != 1 || snap.Last.Window != 1 {
		t.Fatalf("snapshot breach state = %+v", snap)
	}
}
