package slo

// SLO error-budget accounting. The budget model is the standard SRE one:
// with an attainment target T, the error budget is the (1−T) fraction of
// outcomes allowed to be bad (violations + drops). A window whose bad
// fraction equals 1−T burns budget at rate 1.0; a burn rate ≥ the
// threshold is a breach, which emits a control-plane instant and can
// trigger the flight recorder.

const (
	// DefaultTarget is the attainment target when none is configured.
	DefaultTarget = 0.99
	// DefaultBurnThreshold is the window burn rate that counts as a
	// breach (the classic "2× fast burn" page threshold).
	DefaultBurnThreshold = 2.0
)

// WindowBudget is one window's error-budget accounting.
type WindowBudget struct {
	Window int `json:"window"`
	// Attainment is served / (served + violations + dropped); 1 when the
	// window had no outcomes.
	Attainment float64 `json:"attainment"`
	// BurnRate is the window's bad fraction over the allowed bad fraction
	// (1−target): 1.0 burns the budget exactly as fast as it accrues.
	BurnRate float64 `json:"burn_rate"`
	// BudgetUsed and BudgetRemaining are cumulative over the run:
	// used = bad / (total · (1−target)); remaining = 1 − used (negative
	// once the budget is overspent).
	BudgetUsed      float64 `json:"budget_used"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// ExhaustionIn is the virtual seconds until the cumulative budget
	// runs dry if this window's traffic and burn continue: 0 when already
	// exhausted, and −1 ("never") when the window burns no faster than
	// the budget accrues. The sentinel keeps the value JSON-encodable.
	ExhaustionIn float64 `json:"exhaustion_in_s"`
	// Breached marks BurnRate ≥ the configured threshold.
	Breached bool `json:"breached"`
}

// ExhaustionNever is the ExhaustionIn sentinel for "not burning".
const ExhaustionNever = -1.0

// Budget tracks an SLO error budget across scheduling windows. Not safe
// for concurrent use (event-loop goroutine only); a nil *Budget is valid
// and records nothing.
type Budget struct {
	target        float64
	burnThreshold float64

	cumGood, cumBad int
	elapsed         float64
	windows         int
	breaches        int
	last            WindowBudget
}

// NewBudget builds a budget for an attainment target in (0, 1) and a
// breach burn-rate threshold; out-of-range values take the defaults.
func NewBudget(target, burnThreshold float64) *Budget {
	if target <= 0 || target >= 1 {
		target = DefaultTarget
	}
	if burnThreshold <= 0 {
		burnThreshold = DefaultBurnThreshold
	}
	return &Budget{target: target, burnThreshold: burnThreshold}
}

// Target reports the attainment target (0 for a nil budget).
func (b *Budget) Target() float64 {
	if b == nil {
		return 0
	}
	return b.target
}

// BurnThreshold reports the breach threshold (0 for a nil budget).
func (b *Budget) BurnThreshold() float64 {
	if b == nil {
		return 0
	}
	return b.burnThreshold
}

// ObserveWindow folds one window's outcomes (dur virtual seconds long)
// into the budget and returns its accounting. A nil budget returns the
// zero accounting.
func (b *Budget) ObserveWindow(window, served, violations, dropped int, dur float64) WindowBudget {
	wb := WindowBudget{Window: window, Attainment: 1, ExhaustionIn: ExhaustionNever}
	if b == nil {
		return wb
	}
	bad := violations + dropped
	total := served + bad
	b.windows++
	b.elapsed += dur
	b.cumGood += served
	b.cumBad += bad

	frac := 1 - b.target // allowed bad fraction
	if total > 0 {
		wb.Attainment = float64(served) / float64(total)
		wb.BurnRate = (1 - wb.Attainment) / frac
	}
	cumTotal := b.cumGood + b.cumBad
	if cumTotal > 0 {
		allowed := frac * float64(cumTotal)
		wb.BudgetUsed = float64(b.cumBad) / allowed
	}
	wb.BudgetRemaining = 1 - wb.BudgetUsed
	switch {
	case cumTotal > 0 && wb.BudgetRemaining <= 0:
		wb.ExhaustionIn = 0
	case total > 0 && dur > 0:
		// At this window's rates, budget accrues at frac·(total/dur)
		// outcomes/s and burns at bad/dur; exhaustion is when the
		// cumulative headroom is eaten by the net burn.
		net := float64(bad)/dur - frac*float64(total)/dur
		if net > 0 {
			wb.ExhaustionIn = (frac*float64(cumTotal) - float64(b.cumBad)) / net
		}
	}
	wb.Breached = total > 0 && wb.BurnRate >= b.burnThreshold
	if wb.Breached {
		b.breaches++
	}
	b.last = wb
	return wb
}

// Windows reports observed windows; Breaches the burn-rate crossings.
func (b *Budget) Windows() int {
	if b == nil {
		return 0
	}
	return b.windows
}

// Breaches reports how many windows crossed the burn-rate threshold.
func (b *Budget) Breaches() int {
	if b == nil {
		return 0
	}
	return b.breaches
}

// Last returns the most recent window's accounting (zero before any
// window, with Attainment 1 and ExhaustionIn "never").
func (b *Budget) Last() WindowBudget {
	if b == nil || b.windows == 0 {
		return WindowBudget{Attainment: 1, ExhaustionIn: ExhaustionNever}
	}
	return b.last
}

// BudgetSnapshot is the budget's exportable state (flight-recorder
// bundles, the health endpoint).
type BudgetSnapshot struct {
	Target        float64      `json:"target"`
	BurnThreshold float64      `json:"burn_threshold"`
	Windows       int          `json:"windows"`
	Breaches      int          `json:"breaches"`
	Served        int          `json:"served"`
	Bad           int          `json:"bad"`
	Last          WindowBudget `json:"last_window"`
}

// Snapshot captures the budget's state (nil for a nil budget).
func (b *Budget) Snapshot() *BudgetSnapshot {
	if b == nil {
		return nil
	}
	return &BudgetSnapshot{
		Target:        b.target,
		BurnThreshold: b.burnThreshold,
		Windows:       b.windows,
		Breaches:      b.breaches,
		Served:        b.cumGood,
		Bad:           b.cumBad,
		Last:          b.Last(),
	}
}
