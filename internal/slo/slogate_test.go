package slo_test

// The `make slogate` checks: (1) attribution reconciles exactly — zero
// sum mismatches — on the paper-scale traced demo and across the drifting
// replan loop; (2) the flight recorder is deterministic — the same seed
// produces a byte-identical bundle.

import (
	"bytes"
	"testing"

	"e3/internal/experiments"
	"e3/internal/forecast"
	"e3/internal/replan"
	"e3/internal/slo"
	"e3/internal/telemetry"
)

func TestSLOGateAttributionReconciles(t *testing.T) {
	// Paper-scale traced demo: the same bursty 10-virtual-second run the
	// conservation audit and telemetry reconcile gates use.
	attr := slo.NewAttribution(slo.DefaultTopK)
	rep, _, _, err := experiments.RunObservedDemo(nil, attr, 10.0)
	if err != nil {
		t.Fatalf("traced demo: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("traced demo reconcile failed: %v", rep.Violations[0])
	}
	if attr.Mismatches() != 0 {
		t.Fatalf("traced demo: %d attribution mismatches (max residual %v)",
			attr.Mismatches(), attr.MaxResidual())
	}
	completed, _, attributed := attr.Counts()
	if completed == 0 || attributed != completed {
		t.Fatalf("traced demo: %d of %d completions attributed", attributed, completed)
	}
}

func TestSLOGateReplanLoopAttribution(t *testing.T) {
	// The drifting replan loop crosses plan changes, runner rebuilds, and
	// window drains; attribution must stay exact across all of them.
	cfg := replan.DriftingDemo(12, forecast.MethodARIMA, nil)
	attr := slo.NewAttribution(slo.DefaultTopK)
	cfg.Attr = attr
	res, err := replan.Run(cfg)
	if err != nil {
		t.Fatalf("replan loop: %v", err)
	}
	if !res.Report.OK() {
		t.Fatalf("replan reconcile failed: %v", res.Report.Violations[0])
	}
	if attr.Mismatches() != 0 || attr.Open() != 0 {
		t.Fatalf("replan loop: mismatches=%d open=%d", attr.Mismatches(), attr.Open())
	}
	if res.Budget.Windows() != 12 {
		t.Fatalf("budget observed %d windows, want 12", res.Budget.Windows())
	}
}

// slogateBundle runs the drifting demo with the full observability stack
// attached and returns a bundle triggered at a fixed instant.
func slogateBundle(t *testing.T) []byte {
	t.Helper()
	cfg := replan.DriftingDemo(8, forecast.MethodARIMA, telemetry.NewRing(512))
	cfg.Attr = slo.NewAttribution(slo.DefaultTopK)
	rec := &slo.Recorder{}
	cfg.Recorder = rec
	res, err := replan.Run(cfg)
	if err != nil {
		t.Fatalf("replan loop: %v", err)
	}
	if !res.Report.OK() {
		t.Fatalf("replan reconcile failed: %v", res.Report.Violations[0])
	}
	var buf bytes.Buffer
	if err := rec.Trigger("slogate", "determinism probe", 16.0).WriteJSON(&buf); err != nil {
		t.Fatalf("bundle encode: %v", err)
	}
	return buf.Bytes()
}

func TestSLOGateBundleDeterministic(t *testing.T) {
	b1 := slogateBundle(t)
	b2 := slogateBundle(t)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different bundles (%d vs %d bytes)", len(b1), len(b2))
	}
	if len(b1) == 0 {
		t.Fatal("bundle is empty")
	}
}
