package slo

import (
	"bytes"
	"testing"

	"e3/internal/audit"
	"e3/internal/telemetry"
)

func TestRecorderNil(t *testing.T) {
	var r *Recorder
	if r.Trigger(TriggerEngineAbort, "x", 1.0) != nil || r.Last() != nil ||
		r.TriggerCount() != 0 || r.Triggers() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRecorderEmptySources(t *testing.T) {
	r := &Recorder{}
	b := r.Trigger(TriggerAuditViolation, "detail", 3.5)
	if b == nil || r.Last() != b || r.TriggerCount() != 1 {
		t.Fatalf("trigger bookkeeping broken: %+v", r)
	}
	if b.Trigger.Reason != TriggerAuditViolation || b.Trigger.At != 3.5 || b.Trigger.Seq != 1 {
		t.Fatalf("trigger event = %+v", b.Trigger)
	}
	if b.Forecast != nil || b.Ledger != nil || b.Budget != nil || b.Attribution != nil {
		t.Fatalf("empty recorder produced snapshots: %+v", b)
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

func TestRecorderSnapshotsSources(t *testing.T) {
	tr := telemetry.NewRing(8)
	for i := 0; i < 20; i++ {
		tr.Execute("g0", "V100", 0, 4, float64(i), float64(i)+0.5)
	}
	led := audit.NewLedger()
	led.Arrived(1, 0)
	led.Queued(1, 0)
	led.Completed(1, 1, 4)
	bud := NewBudget(0.99, 2.0)
	bud.ObserveWindow(0, 99, 1, 0, 2.0)
	attr := NewAttribution(4)
	drive(attr, 1)

	r := &Recorder{Spans: tr, Ledger: led, Budget: bud, Attr: attr, MaxSpans: 4}
	b := r.Trigger(TriggerSLOBurn, "window 0", 2.0)

	if len(b.Spans) != 4 || b.SpansTotal != 20 || b.SpansDropped != 16 {
		t.Fatalf("span tail = %d spans, total=%d dropped=%d; want 4/20/16",
			len(b.Spans), b.SpansTotal, b.SpansDropped)
	}
	if b.Spans[len(b.Spans)-1].Start != 19 {
		t.Fatalf("span tail must end with the newest span: %+v", b.Spans)
	}
	if b.Ledger == nil || b.Ledger.Arrived != 1 || b.Ledger.Completed != 1 {
		t.Fatalf("ledger snapshot = %+v", b.Ledger)
	}
	if b.Budget == nil || b.Budget.Windows != 1 {
		t.Fatalf("budget snapshot = %+v", b.Budget)
	}
	if b.Attribution == nil || b.Attribution.Attributed != 1 {
		t.Fatalf("attribution snapshot = %+v", b.Attribution)
	}
}

func TestRecorderTriggerLogCapped(t *testing.T) {
	r := &Recorder{}
	for i := 0; i < maxTriggerLog+8; i++ {
		r.Trigger(TriggerEngineAbort, "", float64(i))
	}
	if r.TriggerCount() != maxTriggerLog+8 {
		t.Fatalf("TriggerCount = %d", r.TriggerCount())
	}
	log := r.Triggers()
	if len(log) != maxTriggerLog {
		t.Fatalf("trigger log holds %d, want cap %d", len(log), maxTriggerLog)
	}
	if log[len(log)-1].Seq != maxTriggerLog+8 {
		t.Fatalf("log must end with the newest trigger: %+v", log[len(log)-1])
	}
}

func TestRecorderBundleDeterministic(t *testing.T) {
	build := func() *Recorder {
		attr := NewAttribution(4)
		for i := int64(0); i < 5; i++ {
			drive(attr, i)
		}
		bud := NewBudget(0.99, 2.0)
		bud.ObserveWindow(0, 100, 3, 0, 2.0)
		led := audit.NewLedger()
		led.Arrived(1, 0)
		led.Queued(1, 0)
		led.Completed(1, 1, 4)
		tr := telemetry.NewRing(16)
		tr.Execute("g0", "V100", 0, 4, 0, 0.5)
		return &Recorder{Spans: tr, Ledger: led, Budget: bud, Attr: attr}
	}
	var b1, b2 bytes.Buffer
	if err := build().Trigger(TriggerSLOBurn, "same", 1.0).WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Trigger(TriggerSLOBurn, "same", 1.0).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("identical state marshalled differently:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}
