package slo

// The black-box flight recorder: a bounded, always-on view over the
// subsystems that already retain recent state — the span tracer's ring,
// the plan-diff ring, the forecast stats, the lifecycle ledger's O(1)
// totals, the error budget, and the attribution aggregates. When an audit
// violation, an SLO burn-rate breach, or an engine abort fires, Trigger
// snapshots them all into one deterministic JSON bundle, so the diagnosis
// of a failed run never depends on having re-run it with extra flags.

import (
	"encoding/json"
	"io"

	"e3/internal/audit"
	"e3/internal/forecast"
	"e3/internal/optimizer"
	"e3/internal/telemetry"
)

// Trigger reasons. Drivers may pass their own strings; these are the ones
// the replan loop fires.
const (
	TriggerAuditViolation = "audit-violation"
	TriggerSLOBurn        = "slo-burn-rate"
	TriggerEngineAbort    = "engine-abort"
)

const (
	// defaultBundleSpans bounds spans per bundle when MaxSpans is unset.
	defaultBundleSpans = 512
	// maxBundleDiffs bounds retained plan diffs per bundle.
	maxBundleDiffs = 8
	// maxTriggerLog bounds the recorder's recent-trigger log.
	maxTriggerLog = 32
)

// TriggerEvent is one recorded trigger.
type TriggerEvent struct {
	Seq    int    `json:"seq"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	// At is the virtual time the trigger fired.
	At float64 `json:"virtual_time_s"`
}

// BundleSpan is a span rendered for the bundle (kind as a name, explicit
// field names — the bundle is a diagnostic document, not a wire format).
type BundleSpan struct {
	Track string  `json:"track"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
	Stage int     `json:"stage"`
	Batch int     `json:"batch"`
	GPU   string  `json:"gpu,omitempty"`
}

// LedgerSnapshot is the ledger's population-exact totals at trigger time.
type LedgerSnapshot struct {
	Arrived   int            `json:"arrived"`
	Completed int            `json:"completed"`
	Dropped   int            `json:"dropped"`
	ByReason  map[string]int `json:"by_reason"`
}

// ForecastSnapshot is the estimator's accuracy telemetry at trigger time.
type ForecastSnapshot struct {
	Windows              int     `json:"windows"`
	MAE                  float64 `json:"mae"`
	MAPE                 float64 `json:"mape"`
	ClampHits            int     `json:"clamp_hits"`
	FitFailures          int     `json:"fit_failures"`
	MonotoneFixes        int     `json:"monotone_fixes"`
	PersistenceFallbacks int     `json:"persistence_fallbacks"`
}

// Bundle is one diagnostic dump. Every map it contains marshals with
// sorted keys and every slice has a deterministic order, so identical
// runs produce byte-identical bundles.
type Bundle struct {
	Trigger  TriggerEvent   `json:"trigger"`
	Triggers []TriggerEvent `json:"recent_triggers"`

	// Spans is the tail of the tracer's retained spans (oldest first);
	// SpansTotal/SpansDropped report lifetime recording and what the
	// bundle's bound plus ring eviction discarded.
	Spans        []BundleSpan `json:"spans"`
	SpansTotal   uint64       `json:"spans_total"`
	SpansDropped uint64       `json:"spans_dropped"`

	// PlanDiffs is the tail of the plan-diff ring (oldest first, bounded).
	PlanDiffs []optimizer.PlanDiff `json:"plan_diffs"`

	Forecast    *ForecastSnapshot `json:"forecast,omitempty"`
	Ledger      *LedgerSnapshot   `json:"ledger,omitempty"`
	Budget      *BudgetSnapshot   `json:"slo_budget,omitempty"`
	Attribution *Dump             `json:"attribution,omitempty"`
}

// WriteJSON renders the bundle as indented JSON.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Recorder snapshots the attached sources into bundles on trigger. All
// source fields are optional; nil sources contribute nothing. Not safe
// for concurrent use (event-loop goroutine only); a nil *Recorder is
// valid and records nothing.
type Recorder struct {
	// Spans is the run's tracer — commonly a bounded ring, which is what
	// makes the recorder always-on at fixed memory.
	Spans    *telemetry.Tracer
	Diffs    *optimizer.DiffRing
	Forecast *forecast.Stats
	Ledger   *audit.Ledger
	Budget   *Budget
	Attr     *Attribution

	// MaxSpans bounds spans per bundle (≤0 takes defaultBundleSpans).
	MaxSpans int

	seq      int
	triggers []TriggerEvent
	last     *Bundle
}

// Trigger snapshots every attached source into a bundle, records the
// trigger, and returns the bundle (nil for a nil recorder).
func (r *Recorder) Trigger(reason, detail string, at float64) *Bundle {
	if r == nil {
		return nil
	}
	r.seq++
	ev := TriggerEvent{Seq: r.seq, Reason: reason, Detail: detail, At: at}
	if len(r.triggers) >= maxTriggerLog {
		copy(r.triggers, r.triggers[1:])
		r.triggers = r.triggers[:maxTriggerLog-1]
	}
	r.triggers = append(r.triggers, ev)

	b := &Bundle{Trigger: ev}
	b.Triggers = append(b.Triggers, r.triggers...)
	r.snapshotSpans(b)
	if r.Diffs != nil {
		diffs := r.Diffs.Items()
		if len(diffs) > maxBundleDiffs {
			diffs = diffs[len(diffs)-maxBundleDiffs:]
		}
		b.PlanDiffs = append(b.PlanDiffs, diffs...)
	}
	if r.Forecast != nil {
		b.Forecast = &ForecastSnapshot{
			Windows:              r.Forecast.Windows(),
			MAE:                  r.Forecast.MAE(),
			MAPE:                 r.Forecast.MAPE(),
			ClampHits:            r.Forecast.ClampHits(),
			FitFailures:          r.Forecast.FitFailures(),
			MonotoneFixes:        r.Forecast.MonotoneFixes(),
			PersistenceFallbacks: r.Forecast.PersistenceFallbacks(),
		}
	}
	if r.Ledger != nil {
		arrived, completed, dropped := r.Ledger.Totals()
		ls := &LedgerSnapshot{Arrived: arrived, Completed: completed, Dropped: dropped,
			ByReason: make(map[string]int)}
		for reason, n := range r.Ledger.DropBreakdown() {
			ls.ByReason[string(reason)] = n
		}
		b.Ledger = ls
	}
	b.Budget = r.Budget.Snapshot()
	if r.Attr != nil {
		b.Attribution = r.Attr.Dump()
	}
	r.last = b
	return b
}

func (r *Recorder) snapshotSpans(b *Bundle) {
	if r.Spans == nil {
		return
	}
	max := r.MaxSpans
	if max <= 0 {
		max = defaultBundleSpans
	}
	spans := r.Spans.Spans()
	if len(spans) > max {
		spans = spans[len(spans)-max:]
	}
	b.SpansTotal = r.Spans.Total()
	b.SpansDropped = b.SpansTotal - uint64(len(spans))
	b.Spans = make([]BundleSpan, len(spans))
	for i, s := range spans {
		b.Spans[i] = BundleSpan{
			Track: s.Track, Kind: s.Kind.String(),
			Start: s.Start, End: s.End,
			Stage: s.Stage, Batch: s.Batch, GPU: s.GPU,
		}
	}
}

// Last returns the most recent bundle (nil when nothing has triggered).
func (r *Recorder) Last() *Bundle {
	if r == nil {
		return nil
	}
	return r.last
}

// TriggerCount reports triggers fired over the recorder's lifetime.
func (r *Recorder) TriggerCount() int {
	if r == nil {
		return 0
	}
	return r.seq
}

// Triggers returns the recent-trigger log, oldest first (a copy).
func (r *Recorder) Triggers() []TriggerEvent {
	if r == nil {
		return nil
	}
	return append([]TriggerEvent(nil), r.triggers...)
}
