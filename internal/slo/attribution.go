// Package slo is the request-granularity attribution and SLO-accounting
// layer on top of the span tracer and the lifecycle ledger: it folds the
// same boundary events the tracer and ledger already see into (a) a
// per-request critical-path breakdown whose components provably sum to the
// end-to-end latency, (b) per-window error-budget accounting (attainment,
// burn rate, time-to-exhaustion), and (c) a black-box flight recorder that
// snapshots recent spans, plan diffs, forecast stats, and ledger totals
// into one diagnostic bundle when something goes wrong.
//
// Everything here obeys the simulator's invariants: timestamps are virtual
// (stamped by callers from the sim clock), recording is synchronous on the
// event loop's goroutine, map walks that produce output are sorted, and —
// like audit.Ledger and telemetry.Tracer — a nil *Attribution, *Budget, or
// *Recorder is valid and records nothing, so call sites thread the hooks
// unconditionally and pay nothing when the layer is off.
package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"e3/internal/audit"
	"e3/internal/workload"
)

// Component classifies one segment of a request's critical path. The six
// components partition the interval [arrival, completion] exactly: each
// breakdown's parts are contiguous by construction, so their durations sum
// to the end-to-end latency up to float rounding (SumTolerance).
type Component uint8

const (
	// CompQueueWait is arrival → first dispatch (the dynamic batcher's
	// queue, including admission).
	CompQueueWait Component = iota
	// CompBacklog is dispatch → execution start: time spent queued behind
	// other batches on the chosen instance.
	CompBacklog
	// CompCompute is execution on one split (truncated at the completion
	// instant for early exits that finish before their batch does).
	CompCompute
	// CompTransfer is compute end → merge-queue entry at the next stage
	// (handoff plus inter-split activation transfer).
	CompTransfer
	// CompFuse is merge-queue entry → next dispatch: waiting for the
	// survivor batch to be re-formed (serial runners account their
	// phase-barrier and re-batch wait here too).
	CompFuse
	// CompCollector is the final compute end → completion delivery
	// (handoff of the exit result).
	CompCollector

	// NumComponents bounds the enum for aggregate arrays.
	NumComponents
)

// String names the component; it doubles as the JSON encoding.
func (c Component) String() string {
	switch c {
	case CompQueueWait:
		return "queue-wait"
	case CompBacklog:
		return "backlog"
	case CompCompute:
		return "compute"
	case CompTransfer:
		return "transfer"
	case CompFuse:
		return "fuse"
	case CompCollector:
		return "collector"
	}
	return fmt.Sprintf("component(%d)", c)
}

// ComponentFromString inverts String (for attribution-dump import).
func ComponentFromString(s string) (Component, bool) {
	switch s {
	case "queue-wait":
		return CompQueueWait, true
	case "backlog":
		return CompBacklog, true
	case "compute":
		return CompCompute, true
	case "transfer":
		return CompTransfer, true
	case "fuse":
		return CompFuse, true
	case "collector":
		return CompCollector, true
	}
	return 0, false
}

// MarshalJSON encodes the component as its name.
func (c Component) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON decodes a component name.
func (c *Component) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, ok := ComponentFromString(s)
	if !ok {
		return fmt.Errorf("slo: unknown component %q", s)
	}
	*c = v
	return nil
}

// Part is one contiguous segment of a request's critical path, in virtual
// seconds.
type Part struct {
	Comp Component `json:"component"`
	// Stage is the split index the segment belongs to (-1 for the
	// batcher's queue wait).
	Stage int     `json:"stage"`
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
}

// Duration is the part's extent in virtual seconds.
func (p Part) Duration() float64 { return p.End - p.Start }

// Breakdown is one completed request's full critical-path attribution.
type Breakdown struct {
	ID         int64   `json:"id"`
	Arrival    float64 `json:"arrival_s"`
	Completion float64 `json:"completion_s"`
	Parts      []Part  `json:"parts"`
}

// E2E is the request's end-to-end latency.
func (b Breakdown) E2E() float64 { return b.Completion - b.Arrival }

// Sum adds the parts' durations — equal to E2E up to SumTolerance for
// every breakdown the attribution accepted.
func (b Breakdown) Sum() float64 {
	s := 0.0
	for _, p := range b.Parts {
		s += p.End - p.Start
	}
	return s
}

// Component returns the total time attributed to one component.
func (b Breakdown) Component(c Component) float64 {
	s := 0.0
	for _, p := range b.Parts {
		if p.Comp == c {
			s += p.End - p.Start
		}
	}
	return s
}

// SumTolerance bounds |Σ parts − end-to-end| per request. The parts are
// contiguous by construction (each starts exactly where its predecessor
// ended), so the only slack is the rounding of summing a handful of
// float64 durations — orders of magnitude below this bound at any
// realistic virtual-time scale.
const SumTolerance = 1e-9

// DefaultTopK is the number of slowest-request breakdowns retained.
const DefaultTopK = 16

// maxAttrErrs caps retained mismatch messages, mirroring the audit
// report's violation cap.
const maxAttrErrs = 8

// maxFreeStates bounds the recycled request-state free list.
const maxFreeStates = 256

// reqState tracks one in-flight request between boundary events.
type reqState struct {
	id      int64
	arrival float64
	// prevAt is the end of the last attributed part — the next part's
	// exact start, which is what makes breakdowns contiguous by
	// construction.
	prevAt float64
	// execEnd is the pending batch-compute end awaiting the next boundary
	// event (haveExec). executed marks that any compute part exists, which
	// distinguishes a queue-wait gap from a fuse gap at dispatch.
	execEnd  float64
	haveExec bool
	executed bool
	stage    int
	parts    []Part
}

// Attribution folds per-request boundary events into critical-path
// breakdowns. It is fed by the batcher, the runners, and the collector at
// the same emitter sites that feed the ledger and the tracer; it is not
// safe for concurrent use (event-loop goroutine only).
type Attribution struct {
	// topK bounds the retained slowest-request breakdowns; stride samples
	// per-request detail like audit.NewSampledLedger (≤1 = exhaustive).
	topK   int
	stride int64

	open map[int64]*reqState
	free []*reqState

	// completed/dropped are population-exact O(1) counters over every
	// terminal event; attributed counts the breakdowns finalized in
	// detail.
	completed, dropped, attributed uint64

	mismatches  int
	errs        []string
	maxResidual float64

	compTotal [NumComponents]float64
	compCount [NumComponents]uint64
	// computeByStage accumulates CompCompute per split.
	computeByStage map[int]float64
	computeCount   map[int]uint64

	// slowest holds the top-K breakdowns ordered ascending by end-to-end
	// latency (ties broken by ID so retention is deterministic).
	slowest []Breakdown
}

// NewAttribution builds an exhaustive attribution retaining the topK
// slowest breakdowns (≤0 takes DefaultTopK).
func NewAttribution(topK int) *Attribution {
	if topK <= 0 {
		topK = DefaultTopK
	}
	return &Attribution{
		topK:           topK,
		stride:         1,
		open:           make(map[int64]*reqState),
		computeByStage: make(map[int]float64),
		computeCount:   make(map[int]uint64),
	}
}

// SetStride samples per-request detail for ids divisible by n while
// keeping population-exact completed/dropped totals, mirroring the
// sampled ledger. n ≤ 1 is exhaustive.
func (a *Attribution) SetStride(n int64) {
	if a == nil {
		return
	}
	if n > 1 {
		a.stride = n
	} else {
		a.stride = 1
	}
}

// Enabled reports whether events are being folded.
func (a *Attribution) Enabled() bool { return a != nil }

// Stride reports the detail-sampling stride (1 = exhaustive, nil = 0).
func (a *Attribution) Stride() int64 {
	if a == nil {
		return 0
	}
	return a.stride
}

func (a *Attribution) trackedID(id int64) bool { return a.stride <= 1 || id%a.stride == 0 }

func (a *Attribution) state(s workload.Sample) *reqState {
	st := a.open[s.ID]
	if st != nil {
		return st
	}
	if k := len(a.free); k > 0 {
		st = a.free[k-1]
		a.free[k-1] = nil
		a.free = a.free[:k-1]
	} else {
		st = &reqState{}
	}
	st.id, st.arrival, st.prevAt = s.ID, s.Arrival, s.Arrival
	st.haveExec, st.executed = false, false
	st.stage = -1
	st.parts = st.parts[:0]
	a.open[s.ID] = st
	return st
}

func (a *Attribution) release(st *reqState) {
	delete(a.open, st.id)
	if len(a.free) < maxFreeStates {
		a.free = append(a.free, st)
	}
}

// part closes the segment [st.prevAt, end] under component c. Zero-width
// segments are elided (contiguity is preserved because prevAt does not
// move); an end before prevAt is clamped, mirroring the tracer's
// End < Start clamp for float jitter at scheduling boundaries.
func (a *Attribution) part(st *reqState, c Component, stage int, end float64) {
	if end <= st.prevAt {
		return
	}
	st.parts = append(st.parts, Part{Comp: c, Stage: stage, Start: st.prevAt, End: end})
	st.prevAt = end
}

// resolve advances the request to boundary time at: a pending batch
// compute is closed first (truncated at the boundary for early exits that
// complete before their batch does), then the remaining gap is attributed
// to the boundary's component.
func (a *Attribution) resolve(st *reqState, at float64, gap Component, gapStage int) {
	if st.haveExec {
		end := st.execEnd
		if at < end {
			end = at
		}
		a.part(st, CompCompute, st.stage, end)
		st.haveExec = false
	}
	a.part(st, gap, gapStage, at)
}

// Queued opens the request's attribution record at batcher admission. The
// queue-wait clock runs from the sample's arrival, which is also when the
// batcher admits it.
func (a *Attribution) Queued(s workload.Sample, at float64) {
	if a == nil || !a.trackedID(s.ID) {
		return
	}
	a.state(s)
	_ = at // admission time == arrival; the record anchors at s.Arrival
}

// Dispatched records hand-off to a runner stage. The gap since the last
// boundary is queue wait before the first execution and fusion (re-batch)
// wait afterwards. Requests ingested without a batcher (closed-loop
// drivers) lazily open here, anchored at their arrival.
func (a *Attribution) Dispatched(s workload.Sample, at float64, stage int) {
	if a == nil || !a.trackedID(s.ID) {
		return
	}
	st := a.state(s)
	if st.executed {
		a.resolve(st, at, CompFuse, stage)
	} else {
		a.resolve(st, at, CompQueueWait, -1)
	}
}

// Executed records one batch running stage over [start, end] and charges
// each tracked member's dispatch → start gap to instance backlog. The
// compute part itself stays pending until the sample's next boundary
// event, because early exits can complete before the batch does.
func (a *Attribution) Executed(stage int, batch []workload.Sample, start, end float64) {
	if a == nil {
		return
	}
	for i := range batch {
		st := a.open[batch[i].ID]
		if st == nil {
			continue
		}
		a.resolve(st, start, CompBacklog, stage)
		st.haveExec, st.executed = true, true
		st.stage = stage
		st.execEnd = end
	}
}

// Merged records entry into stage's survivor merge queue; the gap since
// compute end is the handoff plus inter-split transfer.
func (a *Attribution) Merged(s workload.Sample, at float64, stage int) {
	if a == nil {
		return
	}
	st := a.open[s.ID]
	if st == nil {
		return
	}
	_ = stage // the transfer is attributed to the stage that computed it
	a.resolve(st, at, CompTransfer, st.stage)
}

// Completed finalizes the request's breakdown at its completion time and
// verifies that the parts partition [arrival, completion] exactly.
func (a *Attribution) Completed(s workload.Sample, at float64) {
	if a == nil {
		return
	}
	a.completed++
	st := a.open[s.ID]
	if st == nil {
		if a.trackedID(s.ID) {
			a.flag("request %d: completed with no open attribution record", s.ID)
		}
		return
	}
	a.resolve(st, at, CompCollector, st.stage)
	a.finalize(st, at)
}

// Dropped closes the request's record without a breakdown: attribution
// explains completed-request latency, and the ledger already classifies
// drops by reason.
func (a *Attribution) Dropped(s workload.Sample, at float64) {
	if a == nil {
		return
	}
	a.dropped++
	if st := a.open[s.ID]; st != nil {
		a.release(st)
	}
}

func (a *Attribution) flag(format string, args ...any) {
	a.mismatches++
	if len(a.errs) < maxAttrErrs {
		a.errs = append(a.errs, fmt.Sprintf(format, args...))
	}
}

// finalize checks the completed breakdown's structural invariants —
// anchored at arrival, contiguous, non-negative, ending at completion,
// summing to the end-to-end latency — then folds it into the aggregates
// and the top-K retention.
func (a *Attribution) finalize(st *reqState, at float64) {
	e2e := at - st.arrival
	sum := 0.0
	prev := st.arrival
	ok := true
	for _, p := range st.parts {
		if p.Start != prev || p.End < p.Start {
			ok = false
		}
		prev = p.End
		sum += p.End - p.Start
	}
	// Boundary values are copied, never recomputed, so these are exact
	// float equalities: a failure is a sequencing bug, not rounding.
	if prev != at && len(st.parts) > 0 {
		ok = false
	}
	residual := math.Abs(sum - e2e)
	if residual > SumTolerance {
		ok = false
	}
	if residual > a.maxResidual {
		a.maxResidual = residual
	}
	if !ok {
		a.flag("request %d: breakdown does not partition [%v, %v]: %d part(s) summing to %v (end-to-end %v)",
			st.id, st.arrival, at, len(st.parts), sum, e2e)
		a.release(st)
		return
	}
	for _, p := range st.parts {
		d := p.End - p.Start
		a.compTotal[p.Comp] += d
		a.compCount[p.Comp]++
		if p.Comp == CompCompute {
			a.computeByStage[p.Stage] += d
			a.computeCount[p.Stage]++
		}
	}
	a.attributed++
	a.offerSlowest(st, at)
	a.release(st)
}

// slowestLess orders retained breakdowns ascending by end-to-end latency;
// equal latencies keep the smaller ID, so retention is deterministic.
func slowestLess(x, y Breakdown) bool {
	if x.E2E() != y.E2E() {
		return x.E2E() < y.E2E()
	}
	return x.ID > y.ID
}

// offerSlowest admits the breakdown into the top-K retention when it beats
// the current minimum. The parts slice is copied only on admission, so in
// steady state most completions allocate nothing here.
func (a *Attribution) offerSlowest(st *reqState, at float64) {
	bd := Breakdown{ID: st.id, Arrival: st.arrival, Completion: at}
	if len(a.slowest) >= a.topK && !slowestLess(a.slowest[0], bd) {
		return
	}
	bd.Parts = append([]Part(nil), st.parts...)
	i := sort.Search(len(a.slowest), func(i int) bool { return !slowestLess(a.slowest[i], bd) })
	a.slowest = append(a.slowest, Breakdown{})
	copy(a.slowest[i+1:], a.slowest[i:])
	a.slowest[i] = bd
	if len(a.slowest) > a.topK {
		copy(a.slowest, a.slowest[1:])
		a.slowest = a.slowest[:a.topK]
	}
}

// Completed-/Dropped-style accessors. All are nil-safe.

// Counts reports the population-exact terminal counters and the number of
// breakdowns attributed in detail.
func (a *Attribution) Counts() (completed, dropped, attributed uint64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.completed, a.dropped, a.attributed
}

// Mismatches reports breakdowns that failed a structural or sum check.
func (a *Attribution) Mismatches() int {
	if a == nil {
		return 0
	}
	return a.mismatches
}

// MaxResidual reports the worst |Σ parts − end-to-end| seen (seconds).
func (a *Attribution) MaxResidual() float64 {
	if a == nil {
		return 0
	}
	return a.maxResidual
}

// Open reports requests whose records are still in flight.
func (a *Attribution) Open() int {
	if a == nil {
		return 0
	}
	return len(a.open)
}

// ComponentSeconds reports the total virtual time attributed to c across
// all finalized breakdowns.
func (a *Attribution) ComponentSeconds(c Component) float64 {
	if a == nil || c >= NumComponents {
		return 0
	}
	return a.compTotal[c]
}

// Slowest returns the retained top-K breakdowns, slowest first (a copy).
func (a *Attribution) Slowest() []Breakdown {
	if a == nil {
		return nil
	}
	out := make([]Breakdown, len(a.slowest))
	for i := range a.slowest {
		out[len(a.slowest)-1-i] = a.slowest[i]
	}
	return out
}

// Reconcile cross-checks the attribution against a verified audit report,
// folding any disagreement into the report's violations the same way
// telemetry.Reconcile does: a breakdown that fails to sum, a record left
// open at end of run, or terminal counts that disagree with the ledger
// are recording bugs, and -audit must fail on them. A nil attribution
// reconciles vacuously.
func (a *Attribution) Reconcile(rep *audit.Report) {
	if a == nil || rep == nil {
		return
	}
	for _, msg := range a.errs {
		rep.Violate("slo: %s", msg)
	}
	if extra := a.mismatches - len(a.errs); extra > 0 {
		rep.Violate("slo: ... and %d more attribution mismatch(es)", extra)
	}
	if len(a.open) > 0 {
		rep.Violate("slo: %d request(s) still open after end of run", len(a.open))
	}
	if int(a.completed) != rep.Completed {
		rep.Violate("slo: %d completion events, ledger completed %d", a.completed, rep.Completed)
	}
	if int(a.dropped) != rep.Dropped {
		rep.Violate("slo: %d drop events, ledger dropped %d", a.dropped, rep.Dropped)
	}
	if a.stride <= 1 && a.mismatches == 0 {
		if want := a.completed - a.attributed; want != 0 {
			rep.Violate("slo: %d completion(s) not attributed in exhaustive mode", want)
		}
	}
}

// ComponentAgg is one component's aggregate over all finalized breakdowns.
type ComponentAgg struct {
	Component string  `json:"component"`
	Count     uint64  `json:"count"`
	TotalS    float64 `json:"total_s"`
}

// StageCompute is one split's aggregate compute attribution.
type StageCompute struct {
	Stage  int     `json:"stage"`
	Count  uint64  `json:"count"`
	TotalS float64 `json:"total_s"`
}

// Dump is the attribution's exportable summary — what `e3-bench -attr-out`
// writes and `e3-trace -attribute` renders.
type Dump struct {
	Completed   uint64  `json:"completed"`
	Dropped     uint64  `json:"dropped"`
	Attributed  uint64  `json:"attributed"`
	Mismatches  int     `json:"mismatches"`
	MaxResidual float64 `json:"max_residual_s"`

	Components     []ComponentAgg `json:"components"`
	ComputeByStage []StageCompute `json:"compute_by_stage"`
	// Slowest lists the retained top-K breakdowns, slowest first.
	Slowest []Breakdown `json:"slowest"`
}

// Dump snapshots the attribution. Map walks are sorted, so two identical
// runs marshal to identical bytes.
func (a *Attribution) Dump() *Dump {
	d := &Dump{}
	if a == nil {
		return d
	}
	d.Completed, d.Dropped, d.Attributed = a.completed, a.dropped, a.attributed
	d.Mismatches = a.mismatches
	d.MaxResidual = a.maxResidual
	for c := Component(0); c < NumComponents; c++ {
		d.Components = append(d.Components, ComponentAgg{
			Component: c.String(), Count: a.compCount[c], TotalS: a.compTotal[c],
		})
	}
	stages := make([]int, 0, len(a.computeByStage))
	for s := range a.computeByStage {
		stages = append(stages, s)
	}
	sort.Ints(stages)
	for _, s := range stages {
		d.ComputeByStage = append(d.ComputeByStage, StageCompute{
			Stage: s, Count: a.computeCount[s], TotalS: a.computeByStage[s],
		})
	}
	d.Slowest = a.Slowest()
	return d
}
