package slo

import (
	"math"
	"testing"

	"e3/internal/audit"
	"e3/internal/workload"
)

func sample(id int64, arrival float64) workload.Sample {
	return workload.Sample{ID: id, Arrival: arrival, Deadline: arrival + 0.1}
}

// drive runs one request through the canonical pipeline event sequence:
// queue → dispatch(s0) → execute(s0) → merge(s1) → dispatch(s1) →
// execute(s1) → complete.
func drive(a *Attribution, id int64) workload.Sample {
	s := sample(id, 1.0)
	a.Queued(s, 1.0)
	a.Dispatched(s, 1.2, 0)
	a.Executed(0, []workload.Sample{s}, 1.3, 1.5)
	a.Merged(s, 1.6, 1)
	a.Dispatched(s, 1.8, 1)
	a.Executed(1, []workload.Sample{s}, 1.9, 2.1)
	a.Completed(s, 2.2)
	return s
}

func TestAttributionPipelineSequence(t *testing.T) {
	a := NewAttribution(4)
	drive(a, 7)

	completed, dropped, attributed := a.Counts()
	if completed != 1 || dropped != 0 || attributed != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/0/1", completed, dropped, attributed)
	}
	if a.Mismatches() != 0 || a.Open() != 0 {
		t.Fatalf("mismatches=%d open=%d, want 0/0", a.Mismatches(), a.Open())
	}
	slow := a.Slowest()
	if len(slow) != 1 {
		t.Fatalf("got %d retained breakdowns, want 1", len(slow))
	}
	bd := slow[0]
	if bd.ID != 7 || bd.Arrival != 1.0 || bd.Completion != 2.2 {
		t.Fatalf("breakdown identity = %+v", bd)
	}
	// Components partition [1.0, 2.2] exactly.
	if got := bd.Sum(); math.Abs(got-bd.E2E()) > SumTolerance {
		t.Fatalf("sum %v != e2e %v", got, bd.E2E())
	}
	for comp, want := range map[Component]float64{
		CompQueueWait: 0.2, // 1.0 -> 1.2
		CompBacklog:   0.2, // 1.2 -> 1.3, 1.8 -> 1.9
		CompCompute:   0.4, // 1.3 -> 1.5, 1.9 -> 2.1
		CompTransfer:  0.1, // 1.5 -> 1.6
		CompFuse:      0.2, // 1.6 -> 1.8
		CompCollector: 0.1, // 2.1 -> 2.2
	} {
		if got := bd.Component(comp); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%v = %v, want %v", comp, got, want)
		}
	}
	if got := a.ComponentSeconds(CompCompute); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("aggregate compute = %v, want 0.4", got)
	}
}

func TestAttributionEarlyExitTruncatesCompute(t *testing.T) {
	// Data-parallel early exit: the request completes at 1.4, before its
	// batch's compute ends at 1.6 — the pending compute part must truncate
	// at the completion boundary so the breakdown still partitions.
	a := NewAttribution(4)
	s := sample(1, 1.0)
	a.Queued(s, 1.0)
	a.Dispatched(s, 1.1, 0)
	a.Executed(0, []workload.Sample{s}, 1.2, 1.6)
	a.Completed(s, 1.4)

	if a.Mismatches() != 0 {
		t.Fatalf("mismatches = %d, want 0", a.Mismatches())
	}
	bd := a.Slowest()[0]
	if got := bd.Component(CompCompute); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("truncated compute = %v, want 0.2 (1.2 -> 1.4)", got)
	}
	if got := bd.Component(CompCollector); got != 0 {
		t.Fatalf("collector = %v, want 0 (completion inside compute)", got)
	}
}

func TestAttributionDropReleasesWithoutBreakdown(t *testing.T) {
	a := NewAttribution(4)
	s := sample(2, 1.0)
	a.Queued(s, 1.0)
	a.Dropped(s, 1.05)
	completed, dropped, attributed := a.Counts()
	if completed != 0 || dropped != 1 || attributed != 0 {
		t.Fatalf("counts = %d/%d/%d, want 0/1/0", completed, dropped, attributed)
	}
	if a.Open() != 0 || len(a.Slowest()) != 0 {
		t.Fatalf("drop left state behind: open=%d slowest=%d", a.Open(), len(a.Slowest()))
	}
}

func TestAttributionFlagsBrokenSequence(t *testing.T) {
	// Completion before arrival cannot partition [arrival, completion];
	// the breakdown must be flagged, not silently accepted.
	a := NewAttribution(4)
	s := sample(3, 1.0)
	a.Queued(s, 1.0)
	a.Completed(s, 0.5)
	if a.Mismatches() != 1 {
		t.Fatalf("mismatches = %d, want 1", a.Mismatches())
	}
	rep := &audit.Report{}
	a.Reconcile(rep)
	if rep.OK() {
		t.Fatal("Reconcile accepted a flagged attribution")
	}
}

func TestAttributionTopKRetention(t *testing.T) {
	a := NewAttribution(2)
	// Three requests with e2e 1s, 3s, 2s; top-2 must keep 3s and 2s.
	for i, e2e := range []float64{1, 3, 2} {
		s := sample(int64(i), 0)
		a.Queued(s, 0)
		a.Dispatched(s, 0.1, 0)
		a.Executed(0, []workload.Sample{s}, 0.2, e2e)
		a.Completed(s, e2e)
	}
	slow := a.Slowest()
	if len(slow) != 2 || slow[0].E2E() != 3 || slow[1].E2E() != 2 {
		t.Fatalf("top-2 = %+v", slow)
	}
}

func TestAttributionStrideKeepsExactTotals(t *testing.T) {
	a := NewAttribution(4)
	a.SetStride(2)
	for i := int64(0); i < 10; i++ {
		drive(a, i)
	}
	completed, _, attributed := a.Counts()
	if completed != 10 {
		t.Fatalf("completed = %d, want population-exact 10", completed)
	}
	if attributed != 5 {
		t.Fatalf("attributed = %d, want 5 (stride 2)", attributed)
	}
	// Sampled mode must still reconcile against a matching report.
	rep := &audit.Report{Completed: 10}
	a.Reconcile(rep)
	if !rep.OK() {
		t.Fatalf("sampled reconcile violations: %v", rep.Violations)
	}
}

func TestAttributionReconcileCountMismatch(t *testing.T) {
	a := NewAttribution(4)
	drive(a, 1)
	rep := &audit.Report{Completed: 2}
	a.Reconcile(rep)
	if rep.OK() {
		t.Fatal("Reconcile missed a completed-count disagreement")
	}
}

func TestAttributionNilSafe(t *testing.T) {
	var a *Attribution
	s := sample(1, 0)
	a.Queued(s, 0)
	a.Dispatched(s, 0, 0)
	a.Executed(0, []workload.Sample{s}, 0, 1)
	a.Merged(s, 1, 1)
	a.Completed(s, 1)
	a.Dropped(s, 1)
	a.SetStride(4)
	a.Reconcile(&audit.Report{})
	if a.Enabled() || a.Open() != 0 || a.Mismatches() != 0 || a.Slowest() != nil {
		t.Fatal("nil attribution must be inert")
	}
	if d := a.Dump(); d == nil || d.Completed != 0 {
		t.Fatalf("nil Dump = %+v", d)
	}
}

func TestComponentJSONRoundTrip(t *testing.T) {
	for c := Component(0); c < NumComponents; c++ {
		got, ok := ComponentFromString(c.String())
		if !ok || got != c {
			t.Fatalf("component %d does not round-trip via %q", c, c.String())
		}
	}
	if _, ok := ComponentFromString("bogus"); ok {
		t.Fatal("ComponentFromString accepted an unknown name")
	}
}
