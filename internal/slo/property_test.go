package slo_test

// Property test: across seeds and runner architectures, every breakdown
// the attribution accepts must partition [arrival, completion] exactly,
// and its terminal counters must agree with the lifecycle ledger. The
// runner cases mirror the conservation-audit experiment (pipeline,
// data-parallel baseline, serial ablation).

import (
	"fmt"
	"math"
	"testing"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/slo"
	"e3/internal/trace"
	"e3/internal/workload"
)

const (
	propSLO     = 0.100
	propBatch   = 8
	propRate    = 2000.0
	propHorizon = 1.0
	propSeeds   = 20
)

func propPlan(t *testing.T, dee *ee.EEModel, dist workload.Dist) optimizer.Plan {
	t.Helper()
	clus := cluster.Homogeneous(gpu.V100, 8)
	prof := profile.FromDist(dee, dist, 8000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: dee, Profile: prof, Batch: propBatch, Cluster: clus,
		SLO: propSLO, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac,
		Pipelining: true, ModelParallel: true,
	})
	if err != nil {
		t.Fatalf("planning failed: %v", err)
	}
	return plan
}

func TestAttributionSumsAcrossSeedsAndRunners(t *testing.T) {
	base := model.BERTBase()
	dee := ee.NewDeeBERT(base, 0.4)
	dist := workload.Mix(0.8)
	plan := propPlan(t, dee, dist)

	mk := func() *cluster.Cluster { return cluster.Homogeneous(gpu.V100, 8) }
	cases := []struct {
		name string
		est  float64
		mk   func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error)
	}{
		{"pipeline", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewPipeline(eng, mk(), dee, plan, coll)
		}},
		{"dataparallel", 0.030, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			clus := mk()
			devs := make([]int, clus.Size())
			for i := range devs {
				devs[i] = i
			}
			return scheduler.NewDataParallel(eng, clus, dee, devs, coll)
		}},
		{"serial", plan.Latency, func(eng *sim.Engine, coll *scheduler.Collector) (scheduler.Runner, error) {
			return scheduler.NewSerial(eng, mk(), dee, plan, coll), nil
		}},
	}

	for _, rc := range cases {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			for seed := int64(1); seed <= propSeeds; seed++ {
				arr := trace.Bursty(trace.DefaultBursty(propRate), propHorizon, seed)
				attr := slo.NewAttribution(8)
				rep, _, err := serving.ObservedOpenLoop(rc.mk, base.NumLayers(), arr, dist,
					rc.est, propSLO, propBatch, seed, nil, attr)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				// Reconcile already folded attribution disagreements into the
				// report; a clean report plus zero mismatches is the property.
				if !rep.OK() {
					t.Fatalf("seed %d: audit/attribution reconcile failed: %v", seed, rep.Violations[0])
				}
				if attr.Mismatches() != 0 || attr.Open() != 0 {
					t.Fatalf("seed %d: mismatches=%d open=%d", seed, attr.Mismatches(), attr.Open())
				}
				completed, dropped, attributed := attr.Counts()
				if int(completed) != rep.Completed || int(dropped) != rep.Dropped {
					t.Fatalf("seed %d: attr counts %d/%d vs ledger %d/%d",
						seed, completed, dropped, rep.Completed, rep.Dropped)
				}
				if attributed != completed {
					t.Fatalf("seed %d: %d of %d completions attributed", seed, attributed, completed)
				}
				for _, bd := range attr.Slowest() {
					if resid := math.Abs(bd.Sum() - bd.E2E()); resid > slo.SumTolerance {
						t.Fatalf("seed %d: request %d residual %v: %s",
							seed, bd.ID, resid, breakdownString(bd))
					}
				}
			}
		})
	}
}

func breakdownString(bd slo.Breakdown) string {
	s := fmt.Sprintf("[%v..%v]", bd.Arrival, bd.Completion)
	for _, p := range bd.Parts {
		s += fmt.Sprintf(" %v@s%d[%v..%v]", p.Comp, p.Stage, p.Start, p.End)
	}
	return s
}
