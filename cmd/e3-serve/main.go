// Command e3-serve plans an E3 deployment and serves it over HTTP/JSON,
// mirroring the paper's TorchServe front end (§4).
//
// Usage:
//
//	e3-serve -addr :8080 -model bert-base -gpus V100=16 -batch 8
//
// Endpoints:
//
//	POST /v1/infer        {"difficulty": 0.42}
//	GET  /v1/plan
//	GET  /v1/stats
//	GET  /v1/trace        (recent spans of the boot-time simulated run)
//	GET  /v1/flame        (virtual-time compute profile of the boot run; ?format=json|folded|pprof)
//	GET  /v1/health       (readiness: plan, replan loop, audit, SLO budget, flame reconcile)
//	GET  /v1/debug/bundle (flight-recorder diagnostic bundle)
//	GET  /metrics         (Prometheus text exposition)
//	GET  /healthz
//	GET  /debug/pprof/*   (only with -pprof)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"e3/internal/cliutil"
	"e3/internal/cluster"
	"e3/internal/flame"
	"e3/internal/fleet"
	"e3/internal/forecast"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/replan"
	"e3/internal/serving"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", "bert-base", "model: bert-base, bert-large, distilbert, resnet50")
	gpus := flag.String("gpus", "V100=16", "cluster spec, e.g. V100=6,P100=8,K80=15")
	batch := flag.Int("batch", 8, "input batch size")
	sloDur := flag.Duration("slo", 100*time.Millisecond, "latency SLO")
	easy := flag.Float64("easy", 0.8, "easy fraction of the expected workload")
	auditBoot := flag.Bool("audit", false, "verify the plan with a boot-time lifecycle conservation audit and expose it via /v1/stats")
	traceRing := flag.Int("trace-ring", 4096, "retain the most recent N spans of the boot-time simulated run for /metrics and /v1/trace (0 disables boot telemetry)")
	replanWindows := flag.Int("replan-windows", 0, "run the windowed replan loop for N windows at boot and expose its provenance, forecast telemetry, and plan-diff history via /v1/plan and /metrics")
	sloTarget := flag.Float64("slo-target", slo.DefaultTarget, "SLO attainment target the error budget accrues against")
	burnThreshold := flag.Float64("burn-threshold", slo.DefaultBurnThreshold, "window burn rate that counts as a budget breach")
	pprofDebug := flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ (off by default; enable only on trusted networks)")
	fleetN := flag.Int("fleet", 0, "run the N-replica fleet demo (multi-tenant zoo, GPU-aware epoch routing) at boot and expose per-replica rows via /v1/health and e3_fleet_* series via /metrics")
	fleetWorkers := flag.Int("fleet-workers", 0, "with -fleet: shard-runner worker count (0 = one per shard)")
	flag.Parse()

	m, err := cliutil.BuildModel(*modelName, 0.4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-serve:", err)
		os.Exit(2)
	}
	counts, err := cliutil.ParseGPUSpec(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-serve:", err)
		os.Exit(2)
	}
	clus := cluster.New(counts, 2)

	prof := profile.FromDist(m, workload.Mix(*easy), 8000, 1)
	bootTrace := &optimizer.SearchTrace{}
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: m, Profile: prof, Batch: *batch, Cluster: clus,
		SLO: sloDur.Seconds(), SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
		Trace: bootTrace,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-serve: planning failed:", err)
		os.Exit(1)
	}
	log.Printf("e3-serve: %s", plan)

	// The boot plan's search provenance is always exposed; a replan loop
	// replaces it with the last invocation's trace plus the diff history.
	cp := &serving.ControlPlane{Provenance: bootTrace}
	recorder := &slo.Recorder{}
	if *replanWindows > 0 {
		// Drive the windowed predict→plan→serve→observe loop on this
		// deployment with the easy fraction drifting away from the boot
		// assumption, then serve the loop's final (adapted) plan. The loop
		// gets its own span ring (separate from the boot self-check's ring,
		// whose counters must reconcile against the boot run alone), plus
		// the attribution, error budget, and flight recorder the live
		// /v1/health, /metrics, and /v1/debug/bundle endpoints expose.
		loopTr := telemetry.NewRing(2048)
		loopAttr := slo.NewAttribution(slo.DefaultTopK)
		res, err := replan.Run(replan.Config{
			Model: m, Cluster: clus, Batch: *batch, SLO: sloDur.Seconds(),
			Windows: *replanWindows, WindowDur: 2.0,
			AvgRate: plan.Goodput, Seed: 424242, DriftThreshold: 0.05,
			Workload: func(w int) workload.Dist {
				frac := *easy
				if *replanWindows > 1 {
					frac -= (*easy - 0.3) * float64(w) / float64(*replanWindows-1)
				}
				return workload.Mix(frac)
			},
			Method: forecast.MethodARIMA,
			Tracer: loopTr, Attr: loopAttr,
			SLOTarget: *sloTarget, BurnThreshold: *burnThreshold,
			Recorder: recorder,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-serve: replan loop failed:", err)
			os.Exit(1)
		}
		if !res.Report.OK() {
			fmt.Fprintln(os.Stderr, "e3-serve: refusing to serve a replan loop that fails conservation")
			os.Exit(1)
		}
		log.Printf("e3-serve: replan loop: %d windows, %d replans (%d plan changes, %d plan-cache hits), forecast MAE %.4f",
			*replanWindows, res.Replans, res.PlanChanges, res.PlanCacheHits, res.MeanForecastMAE)
		if res.Budget.Breaches() > 0 {
			log.Printf("e3-serve: SLO budget: %d of %d windows breached burn threshold %.1f",
				res.Budget.Breaches(), res.Budget.Windows(), res.Budget.BurnThreshold())
		}
		plan = res.FinalPlan
		log.Printf("e3-serve: serving adapted plan: %s", plan)
		cp = &serving.ControlPlane{
			Provenance: res.Provenance, Forecast: res.Forecast,
			Diffs: res.Diffs, Replans: res.Replans, PlanChanges: res.PlanChanges,
			PlanCacheHits: res.PlanCacheHits, PlanCacheMisses: res.PlanCacheMisses,
			Budget: res.Budget,
		}
	}

	api := serving.NewAPI(m, plan)
	api.AttachControlPlane(cp)
	var tr *telemetry.Tracer
	if *traceRing > 0 {
		tr = telemetry.NewRing(*traceRing)
	}
	if *auditBoot || tr != nil {
		// Self-check before serving: replay a bursty open-loop trace at the
		// planned goodput through the full batching/scheduling stack with
		// the ledger, tracer, and per-request attribution attached. The run
		// both verifies that every sample is accounted exactly once (and
		// that every critical-path breakdown sums to its request's latency)
		// and warms the telemetry the live /metrics and /v1/trace endpoints
		// expose.
		attr := slo.NewAttribution(slo.DefaultTopK)
		fl := flame.NewProfiler(0)
		rep, coll, err := serving.ProfiledPlan(clus, m, plan, workload.Mix(*easy),
			plan.Goodput, 10.0, sloDur.Seconds(), 1, tr, attr, fl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-serve: boot run failed:", err)
			os.Exit(1)
		}
		// Expose the boot run's virtual-time compute profile (where the
		// fleet's GPU-seconds went) via /v1/flame; the exact-reconcile
		// verdict also rides on /v1/health.
		flStat := fl.Verify(coll.Util)
		api.AttachFlame(fl.Profile(), flStat)
		log.Printf("e3-serve: flame profile: %d devices reconciled, residual %dns (ok=%v)",
			flStat.Devices, flStat.Residual, flStat.OK())
		// When no replan loop armed the recorder, arm it with the boot
		// run's state so /v1/debug/bundle can dump it on a later trigger.
		if recorder.Ledger == nil {
			recorder.Spans = tr
			recorder.Ledger = coll.Audit
			recorder.Attr = attr
		}
		if *auditBoot {
			log.Printf("e3-serve: %s", rep)
			if !rep.OK() {
				fmt.Fprintln(os.Stderr, "e3-serve: refusing to serve a plan that fails conservation")
				os.Exit(1)
			}
			api.AttachAudit(rep)
		}
		if tr != nil {
			api.AttachTelemetry(tr)
			log.Printf("e3-serve: telemetry ring holds %d of %d recorded spans", len(tr.Spans()), tr.Total())
		}
	}
	api.AttachRecorder(recorder)

	if *fleetN > 0 {
		// Boot-time fleet run: N replica clusters under the demo zoo,
		// sharded in parallel with the deterministic runner, verified for
		// conservation, then exposed read-only on /v1/health and /metrics.
		workers := *fleetWorkers
		if workers <= 0 {
			workers = *fleetN
		}
		res, err := fleet.Run(fleet.DemoConfig(*fleetN, workers))
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-serve: fleet run failed:", err)
			os.Exit(1)
		}
		log.Printf("e3-serve: fleet: %d replicas x %d workers, %d epochs: %d minted = %d routed + %d shed, %d events",
			*fleetN, workers, res.Epochs, res.Minted, res.Routed, res.DoorShed, res.Events)
		api.AttachFleet(res.Status())
	}

	handler := api.Handler()
	if *pprofDebug {
		// pprof is opt-in: profiling endpoints leak heap contents and cost
		// CPU, so they stay off unless explicitly requested. The routes live
		// on an outer mux so the serving package itself never imports
		// net/http/pprof.
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = outer
		log.Printf("e3-serve: pprof enabled at /debug/pprof/")
	}
	log.Printf("e3-serve: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}
