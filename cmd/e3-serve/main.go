// Command e3-serve plans an E3 deployment and serves it over HTTP/JSON,
// mirroring the paper's TorchServe front end (§4).
//
// Usage:
//
//	e3-serve -addr :8080 -model bert-base -gpus V100=16 -batch 8
//
// Endpoints:
//
//	POST /v1/infer   {"difficulty": 0.42}
//	GET  /v1/plan
//	GET  /v1/stats
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"e3/internal/cliutil"
	"e3/internal/cluster"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/serving"
	"e3/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelName := flag.String("model", "bert-base", "model: bert-base, bert-large, distilbert, resnet50")
	gpus := flag.String("gpus", "V100=16", "cluster spec, e.g. V100=6,P100=8,K80=15")
	batch := flag.Int("batch", 8, "input batch size")
	slo := flag.Duration("slo", 100*time.Millisecond, "latency SLO")
	easy := flag.Float64("easy", 0.8, "easy fraction of the expected workload")
	flag.Parse()

	m, err := cliutil.BuildModel(*modelName, 0.4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-serve:", err)
		os.Exit(2)
	}
	counts, err := cliutil.ParseGPUSpec(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-serve:", err)
		os.Exit(2)
	}
	clus := cluster.New(counts, 2)

	prof := profile.FromDist(m, workload.Mix(*easy), 8000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: m, Profile: prof, Batch: *batch, Cluster: clus,
		SLO: slo.Seconds(), SlackFrac: 0.2, Pipelining: true, ModelParallel: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-serve: planning failed:", err)
		os.Exit(1)
	}
	log.Printf("e3-serve: %s", plan)

	api := serving.NewAPI(m, plan)
	log.Printf("e3-serve: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, api.Handler()); err != nil {
		log.Fatal(err)
	}
}
