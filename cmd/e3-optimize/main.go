// Command e3-optimize runs E3's planner on a model/cluster/workload
// setting and prints the chosen splits, replication, and predicted
// goodput — the paper's §3.2 optimization, standalone.
//
// Usage:
//
//	e3-optimize -model bert-base -gpus V100=16 -batch 8 -slo 100ms -easy 0.8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"e3/internal/cliutil"
	"e3/internal/cluster"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/workload"
)

func main() {
	modelName := flag.String("model", "bert-base", "model: bert-base, bert-large, distilbert, resnet50, pabee, t5, llama")
	gpus := flag.String("gpus", "V100=16", "cluster spec, e.g. V100=6,P100=8,K80=15")
	batch := flag.Int("batch", 8, "input batch size B0")
	slo := flag.Duration("slo", 100*time.Millisecond, "latency SLO")
	easy := flag.Float64("easy", 0.8, "easy fraction of the workload mix")
	entropy := flag.Float64("entropy", 0.4, "exit entropy threshold")
	wrapper := flag.Bool("wrapper", false, "disable interior ramps (§3.4 exit-wrapper)")
	noMP := flag.Bool("no-model-parallel", false, "ablation: serialize splits")
	noPipe := flag.Bool("no-pipelining", false, "ablation: disable pipelining")
	maxSplits := flag.Int("max-splits", optimizer.DefaultMaxSplits, "max pipeline splits the search considers")
	maxCands := flag.Int("max-cands", optimizer.DefaultMaxBoundaryCands, "max boundary candidates ranked by exit mass (negative = uncapped)")
	workers := flag.Int("workers", 0, "parallel search workers (0 = one per core up to 8; any value yields identical plans)")
	minExit := flag.Float64("min-exit", optimizer.DefaultMinExitFrac, "min exit mass for a boundary candidate (0 keeps every ramp)")
	slack := flag.Float64("slack", optimizer.DefaultSlackFrac, "fraction of the SLO reserved as headroom (0 spends the whole SLO)")
	jsonOut := flag.Bool("json", false, "emit the plan as JSON (for pinning/diffing deployments)")
	explain := flag.Bool("explain", false, "print the search provenance: candidates enumerated, rejections by reason, winner and runners-up")
	explainJSON := flag.String("explain-json", "", "write the machine-readable search trace to FILE")
	flag.Parse()

	m, err := cliutil.BuildModel(*modelName, *entropy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-optimize:", err)
		os.Exit(2)
	}
	counts, err := cliutil.ParseGPUSpec(*gpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-optimize:", err)
		os.Exit(2)
	}
	clus := cluster.New(counts, 2)
	prof := profile.FromDist(m, workload.Mix(*easy), 8000, 1)

	var trace *optimizer.SearchTrace
	if *explain || *explainJSON != "" {
		trace = &optimizer.SearchTrace{}
	}
	cfg := optimizer.Config{
		Model: m, Profile: prof, Batch: *batch, Cluster: clus,
		SLO: slo.Seconds(), SlackFrac: *slack, MinExitFrac: *minExit,
		MaxSplits: *maxSplits, MaxBoundaryCands: *maxCands, Workers: *workers,
		Pipelining: !*noPipe, ModelParallel: !*noMP,
		DisableInteriorRamps: *wrapper,
		Trace:                trace,
	}
	start := time.Now()
	plan, err := optimizer.MaximizeGoodput(cfg)
	elapsed := time.Since(start)
	if *explainJSON != "" {
		f, ferr := os.Create(*explainJSON)
		if ferr == nil {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			ferr = enc.Encode(trace)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "e3-optimize:", ferr)
			os.Exit(1)
		}
	}
	if err != nil {
		// With -explain the trace still explains *why* nothing was
		// feasible.
		if *explain {
			trace.WriteExplain(os.Stdout)
		}
		fmt.Fprintln(os.Stderr, "e3-optimize:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fmt.Fprintln(os.Stderr, "e3-optimize:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("model:    %s (%d layers, %d active ramps)\n", m.Name, m.Base.NumLayers(), len(m.ActiveRamps()))
	fmt.Printf("cluster:  %d GPUs (%s), $%.5f/s\n", clus.Size(), *gpus, clus.CostPerSecond())
	fmt.Printf("workload: %.0f%% easy, batch %d, SLO %s\n", *easy*100, *batch, slo)
	fmt.Printf("solve:    %s\n\n", elapsed.Round(time.Microsecond))
	fmt.Println(plan)
	fmt.Println()
	fmt.Printf("%-10s %-8s %-9s %-10s %-12s %-10s\n", "split", "gpu", "replicas", "batch-in", "stage(ms)", "comm(ms)")
	for _, s := range plan.Splits {
		fmt.Printf("[%2d..%2d]   %-8s %-9d %-10.1f %-12.2f %-10.2f\n",
			s.From, s.To, s.Kind, s.Replicas, float64(plan.Batch)*s.Survival, s.StageTime*1e3, s.CommTime*1e3)
	}
	if *explain {
		fmt.Println()
		trace.WriteExplain(os.Stdout)
	}
}
