// Command e3-trace generates and summarizes request arrival traces: the
// uniform and Poisson open-loop clients and the bursty Twitter-like trace
// of §5.7. Output is one arrival timestamp per line (seconds), with a
// summary on stderr.
//
// Usage:
//
//	e3-trace -kind bursty -rate 1000 -horizon 300 -seed 1 > trace.txt
//
// It also summarizes Chrome trace-event timelines exported by
// e3-bench -trace-out (per-split utilization, bubble time, batch-size
// histograms):
//
//	e3-trace -summarize demo.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"e3/internal/telemetry"
	"e3/internal/trace"
)

func main() {
	kind := flag.String("kind", "bursty", "trace kind: uniform, poisson, bursty")
	rate := flag.Float64("rate", 1000, "average request rate (req/s)")
	horizon := flag.Float64("horizon", 300, "trace duration (s)")
	seed := flag.Int64("seed", 1, "random seed")
	summary := flag.Bool("summary", false, "print only the summary")
	summarize := flag.String("summarize", "", "summarize a Chrome trace-event JSON file exported by e3-bench -trace-out, then exit")
	flag.Parse()

	if *summarize != "" {
		if err := summarizeChrome(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, "e3-trace:", err)
			os.Exit(1)
		}
		return
	}

	var arr trace.Arrivals
	switch *kind {
	case "uniform":
		arr = trace.Uniform(*rate, *horizon)
	case "poisson":
		arr = trace.Poisson(*rate, *horizon, *seed)
	case "bursty":
		arr = trace.Bursty(trace.DefaultBursty(*rate), *horizon, *seed)
	default:
		fmt.Fprintf(os.Stderr, "e3-trace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if !*summary {
		w := bufio.NewWriter(os.Stdout)
		for _, at := range arr {
			fmt.Fprintf(w, "%.6f\n", at)
		}
		w.Flush()
	}
	fmt.Fprintf(os.Stderr, "e3-trace: %d arrivals over %.0fs (avg %.1f req/s, burstiness CV²=%.1f)\n",
		len(arr), *horizon, arr.Rate(*horizon), arr.Burstiness())
}

// summarizeChrome reads an exported span timeline and prints per-split
// utilization, bubble time, and batch-size histograms.
func summarizeChrome(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := telemetry.ReadChrome(f)
	if err != nil {
		return err
	}
	telemetry.Summarize(spans).Print(os.Stdout)
	return nil
}
