// Command e3-trace generates and summarizes request arrival traces: the
// uniform and Poisson open-loop clients and the bursty Twitter-like trace
// of §5.7. Output is one arrival timestamp per line (seconds), with a
// summary on stderr.
//
// Usage:
//
//	e3-trace -kind bursty -rate 1000 -horizon 300 -seed 1 > trace.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"e3/internal/trace"
)

func main() {
	kind := flag.String("kind", "bursty", "trace kind: uniform, poisson, bursty")
	rate := flag.Float64("rate", 1000, "average request rate (req/s)")
	horizon := flag.Float64("horizon", 300, "trace duration (s)")
	seed := flag.Int64("seed", 1, "random seed")
	summary := flag.Bool("summary", false, "print only the summary")
	flag.Parse()

	var arr trace.Arrivals
	switch *kind {
	case "uniform":
		arr = trace.Uniform(*rate, *horizon)
	case "poisson":
		arr = trace.Poisson(*rate, *horizon, *seed)
	case "bursty":
		arr = trace.Bursty(trace.DefaultBursty(*rate), *horizon, *seed)
	default:
		fmt.Fprintf(os.Stderr, "e3-trace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if !*summary {
		w := bufio.NewWriter(os.Stdout)
		for _, at := range arr {
			fmt.Fprintf(w, "%.6f\n", at)
		}
		w.Flush()
	}
	fmt.Fprintf(os.Stderr, "e3-trace: %d arrivals over %.0fs (avg %.1f req/s, burstiness CV²=%.1f)\n",
		len(arr), *horizon, arr.Rate(*horizon), arr.Burstiness())
}
