// Command e3-trace generates and summarizes request arrival traces: the
// uniform and Poisson open-loop clients and the bursty Twitter-like trace
// of §5.7. Output is one arrival timestamp per line (seconds), with a
// summary on stderr.
//
// Usage:
//
//	e3-trace -kind bursty -rate 1000 -horizon 300 -seed 1 > trace.txt
//
// It also summarizes Chrome trace-event timelines exported by
// e3-bench -trace-out (per-split utilization, bubble time, batch-size
// histograms, per-split queue-wait percentiles):
//
//	e3-trace -summarize demo.json
//
// And it renders latency-attribution dumps exported by e3-bench
// -attr-out (top-k slowest requests with their critical-path component
// breakdowns):
//
//	e3-trace -attribute attr.json -topk 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"e3/internal/flame"
	"e3/internal/slo"
	"e3/internal/telemetry"
	"e3/internal/trace"
)

func main() {
	kind := flag.String("kind", "bursty", "trace kind: uniform, poisson, bursty")
	rate := flag.Float64("rate", 1000, "average request rate (req/s)")
	horizon := flag.Float64("horizon", 300, "trace duration (s)")
	seed := flag.Int64("seed", 1, "random seed")
	summary := flag.Bool("summary", false, "print only the summary")
	summarize := flag.String("summarize", "", "summarize a Chrome trace-event JSON file exported by e3-bench -trace-out, then exit")
	attribute := flag.String("attribute", "", "print the top-k slowest requests of a latency-attribution dump exported by e3-bench -attr-out, then exit")
	topk := flag.Int("topk", 10, "with -attribute: number of slowest requests to print")
	flag.Parse()

	if *summarize != "" {
		if err := summarizeChrome(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, "e3-trace:", err)
			os.Exit(1)
		}
		return
	}

	if *attribute != "" {
		if err := printAttribution(*attribute, *topk); err != nil {
			fmt.Fprintln(os.Stderr, "e3-trace:", err)
			os.Exit(1)
		}
		return
	}

	var arr trace.Arrivals
	switch *kind {
	case "uniform":
		arr = trace.Uniform(*rate, *horizon)
	case "poisson":
		arr = trace.Poisson(*rate, *horizon, *seed)
	case "bursty":
		arr = trace.Bursty(trace.DefaultBursty(*rate), *horizon, *seed)
	default:
		fmt.Fprintf(os.Stderr, "e3-trace: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if !*summary {
		w := bufio.NewWriter(os.Stdout)
		for _, at := range arr {
			fmt.Fprintf(w, "%.6f\n", at)
		}
		w.Flush()
	}
	fmt.Fprintf(os.Stderr, "e3-trace: %d arrivals over %.0fs (avg %.1f req/s, burstiness CV²=%.1f)\n",
		len(arr), *horizon, arr.Rate(*horizon), arr.Burstiness())
}

// summarizeChrome reads an exported span timeline and prints per-split
// utilization, bubble time, and batch-size histograms.
func summarizeChrome(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := telemetry.ReadChrome(f)
	if err != nil {
		return err
	}
	// Replaying the spans through the flame classifier differentiates the
	// summary's idle time into the bubble taxonomy (queue-starved /
	// transfer-blocked / fuse-blocked / drained / idle shares per split).
	prof := flame.FromSpans(spans)
	telemetry.Summarize(spans).PrintWithTaxonomy(os.Stdout, flame.SummarizeBubbles(prof))
	return nil
}

// printAttribution reads an attribution dump (e3-bench -attr-out) and
// prints aggregate component totals plus the top-k slowest requests with
// their per-component critical-path milliseconds.
func printAttribution(path string, topk int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var dump slo.Dump
	if err := json.NewDecoder(f).Decode(&dump); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	fmt.Printf("attribution: %d completed, %d dropped, %d breakdowns folded, %d sum mismatches (max residual %.3g s)\n",
		dump.Completed, dump.Dropped, dump.Attributed, dump.Mismatches, dump.MaxResidual)
	fmt.Println("component totals (critical-path seconds across attributed requests):")
	for _, c := range dump.Components {
		if c.Count == 0 {
			continue
		}
		fmt.Printf("  %-11s n=%-8d total=%.3fs mean=%.2fms\n",
			c.Component, c.Count, c.TotalS, c.TotalS/float64(c.Count)*1e3)
	}
	if len(dump.ComputeByStage) > 0 {
		fmt.Println("compute by split:")
		for _, sc := range dump.ComputeByStage {
			fmt.Printf("  split %-3d n=%-8d total=%.3fs mean=%.2fms\n",
				sc.Stage, sc.Count, sc.TotalS, sc.TotalS/float64(sc.Count)*1e3)
		}
	}

	slowest := dump.Slowest
	if topk < len(slowest) {
		slowest = slowest[:topk]
	}
	fmt.Printf("top %d slowest requests:\n", len(slowest))
	for i, b := range slowest {
		fmt.Printf("  #%-3d req %-8d e2e=%.2fms (t=%.4fs..%.4fs)\n",
			i+1, b.ID, b.E2E()*1e3, b.Arrival, b.Completion)
		var byComp [slo.NumComponents]float64
		for _, p := range b.Parts {
			byComp[p.Comp] += p.End - p.Start
		}
		for comp, total := range byComp {
			if total == 0 {
				continue
			}
			fmt.Printf("       %-11s %8.2fms  (%4.1f%%)\n",
				slo.Component(comp), total*1e3, total/b.E2E()*100)
		}
	}
	return nil
}
