// Command e3-validate cross-checks the planner against the executor: for
// each model in the zoo it plans a deployment, measures the plan with the
// pipeline simulation, and reports the prediction error. Clockwork's
// lesson — predictability from the bottom up — applied as a self-test.
//
// Usage:
//
//	e3-validate               # whole zoo at defaults
//	e3-validate -batch 4 -gpus 8 -tolerance 0.35
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"e3/internal/cliutil"
	"e3/internal/cluster"
	"e3/internal/gpu"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/workload"
)

// caseSpec pairs a zoo model with its natural workload and SLO.
type caseSpec struct {
	name  string
	dist  workload.Dist
	slo   float64
	batch int
}

func main() {
	gpus := flag.Int("gpus", 16, "V100 count for the validation cluster")
	batch := flag.Int("batch", 8, "batch size (classification models)")
	tolerance := flag.Float64("tolerance", 0.35, "max |measured-planned|/planned before failing")
	flag.Parse()

	cases := []caseSpec{
		{"bert-base", workload.Mix(0.8), 0.100, *batch},
		{"bert-large", workload.Mix(0.8), 0.250, *batch},
		{"distilbert", workload.Mix(0.8), 0.100, *batch},
		{"resnet50", workload.ImageNet(), 0.100, *batch},
		{"pabee", workload.Mix(0.8), 0.250, *batch},
	}

	fmt.Printf("%-12s %14s %14s %8s\n", "model", "planned/s", "measured/s", "error")
	failed := false
	for _, c := range cases {
		m, err := cliutil.BuildModel(c.name, 0.4)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-validate:", err)
			os.Exit(2)
		}
		clus := cluster.Homogeneous(gpu.V100, *gpus)
		prof := profile.FromDist(m, c.dist, 8000, 1)
		plan, err := optimizer.MaximizeGoodput(optimizer.Config{
			Model: m, Profile: prof, Batch: c.batch, Cluster: clus,
			SLO: c.slo, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
		})
		if err != nil {
			fmt.Printf("%-12s %14s %14s %8s\n", c.name, "-", "-", "infeasible")
			continue
		}
		build := func() (*sim.Engine, scheduler.Runner) {
			eng := sim.NewEngine()
			coll := scheduler.NewCollector(m.Base.NumLayers(), c.slo, 0)
			p, err := scheduler.NewPipeline(eng, cluster.Homogeneous(gpu.V100, *gpus), m, plan, coll)
			if err != nil {
				fmt.Fprintln(os.Stderr, "e3-validate:", err)
				os.Exit(1)
			}
			return eng, p
		}
		gen := func() *workload.Generator { return workload.NewGenerator(c.dist, 99) }
		measured := serving.MaxGoodput(build, gen, c.batch, c.slo, 2.0, plan.Goodput*2, 0.01)
		errFrac := math.Abs(measured-plan.Goodput) / plan.Goodput
		status := fmt.Sprintf("%5.1f%%", errFrac*100)
		if errFrac > *tolerance {
			status += "  FAIL"
			failed = true
		}
		fmt.Printf("%-12s %14.0f %14.0f %8s\n", c.name, plan.Goodput, measured, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "e3-validate: planner predictions outside tolerance")
		os.Exit(1)
	}
	fmt.Println("ok: planner predictions within tolerance")
}
