// Command e3-prof inspects virtual-time compute profiles exported by
// e3-bench -flame-out (or GET /v1/flame).
//
// Usage:
//
//	e3-prof profile.json              # accounting summary + top stacks
//	e3-prof -top 40 profile.json      # more stacks
//	e3-prof -tree profile.json        # hierarchical frame tree
//	e3-prof -focus split=2 p.json     # only stacks containing that frame
//	e3-prof -diff a.json b.json       # signed per-stack GPU-time deltas
//
// The summary table proves the fold is exhaustive: per device it prints
// busy, overlap, excess, and bubble time against the profile horizon, and
// the accounted column is exactly 100.000% when the conservation identity
// busy − overlap − excess + bubble == horizon holds (the flamegate
// enforces a zero integer-nanosecond residual).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"e3/internal/flame"
)

func main() {
	top := flag.Int("top", 20, "number of stacks (or diff entries) to print")
	tree := flag.Bool("tree", false, "print the hierarchical frame tree instead of the flat top list")
	diff := flag.Bool("diff", false, "compare two profiles (args: a.json b.json); positive deltas mean B has more")
	focus := flag.String("focus", "", "only count stacks containing this exact frame (e.g. split=2, dev=V100-3, transfer-blocked)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "e3-prof: -diff wants exactly two profile paths")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *top))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "e3-prof: want exactly one profile path (or -diff a b)")
		os.Exit(2)
	}
	pr, err := readProfile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-prof:", err)
		os.Exit(1)
	}
	if *focus != "" {
		pr = focusProfile(pr, *focus)
	}
	printSummary(pr)
	if *tree {
		printTree(pr)
	} else {
		printTop(pr, *top)
	}
}

func readProfile(path string) (*flame.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return flame.ReadProfile(f)
}

// focusProfile keeps only stacks containing the frame, written either in
// the folded spelling ("split:2") or flag-friendly k=v ("split=2").
func focusProfile(pr *flame.Profile, frame string) *flame.Profile {
	alt := frame
	if i := strings.IndexByte(frame, '='); i >= 0 {
		alt = frame[:i] + ":" + frame[i+1:]
	}
	out := &flame.Profile{
		Schema: pr.Schema, StartS: pr.StartS, EndS: pr.EndS,
		Stacks: map[string]int64{}, Devices: pr.Devices,
	}
	for stack, w := range pr.Stacks {
		for _, f := range flame.SplitStack(stack) {
			if f == frame || f == alt {
				out.Stacks[stack] = w
				out.TotalNanos += w
				break
			}
		}
	}
	return out
}

func secs(n int64) float64 { return float64(n) / 1e9 }

// printSummary prints the per-device accounting table. The accounted
// column is (busy − overlap − excess + bubble)/horizon: exactly 100.000%
// per device when the profile reconciled with zero residual.
func printSummary(pr *flame.Profile) {
	fmt.Printf("profile: %.3fs virtual window [%g, %g), %d devices, %d stacks\n\n",
		pr.EndS-pr.StartS, pr.StartS, pr.EndS, len(pr.Devices), len(pr.Stacks))
	if len(pr.Devices) == 0 {
		return
	}
	fmt.Printf("%-12s %-10s %-9s %-9s %-10s %-10s %s\n",
		"device", "busy(s)", "ovl(s)", "exc(s)", "bubble(s)", "horizon(s)", "accounted")
	var tb, to, tx, tg, th int64
	for _, d := range pr.Devices {
		acct := 0.0
		if d.HorizonNanos > 0 {
			acct = 100 * float64(d.BusyNanos-d.OverlapNanos-d.ExcessNanos+d.BubbleNanos) / float64(d.HorizonNanos)
		}
		fmt.Printf("%-12s %-10.3f %-9.3f %-9.3f %-10.3f %-10.3f %.3f%%\n",
			d.ID, secs(d.BusyNanos), secs(d.OverlapNanos), secs(d.ExcessNanos),
			secs(d.BubbleNanos), secs(d.HorizonNanos), acct)
		tb += d.BusyNanos
		to += d.OverlapNanos
		tx += d.ExcessNanos
		tg += d.BubbleNanos
		th += d.HorizonNanos
	}
	acct := 0.0
	if th > 0 {
		acct = 100 * float64(tb-to-tx+tg) / float64(th)
	}
	fmt.Printf("%-12s %-10.3f %-9.3f %-9.3f %-10.3f %-10.3f %.3f%%\n\n",
		"total", secs(tb), secs(to), secs(tx), secs(tg), secs(th), acct)
}

func printTop(pr *flame.Profile, n int) {
	type entry struct {
		stack string
		w     int64
	}
	entries := make([]entry, 0, len(pr.Stacks))
	var total int64
	for k, w := range pr.Stacks {
		if w > 0 {
			entries = append(entries, entry{k, w})
			total += w
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].w != entries[j].w {
			return entries[i].w > entries[j].w
		}
		return entries[i].stack < entries[j].stack
	})
	fmt.Printf("top %d of %d stacks by virtual GPU-time:\n", min(n, len(entries)), len(entries))
	fmt.Printf("%-12s %-8s %s\n", "weight(s)", "share", "stack")
	for i, e := range entries {
		if i >= n {
			fmt.Printf("  ... %d more stacks\n", len(entries)-n)
			break
		}
		fmt.Printf("%-12.6f %-8s %s\n", secs(e.w),
			fmt.Sprintf("%.2f%%", 100*float64(e.w)/float64(total)),
			strings.Join(flame.SplitStack(e.stack), ";"))
	}
}

// treeNode aggregates weight over a frame prefix.
type treeNode struct {
	name     string
	self     int64 // weight of stacks ending exactly here
	total    int64 // weight of all stacks passing through here
	children map[string]*treeNode
	order    []string
}

func (t *treeNode) child(name string) *treeNode {
	if c, ok := t.children[name]; ok {
		return c
	}
	c := &treeNode{name: name, children: map[string]*treeNode{}}
	t.children[name] = c
	t.order = append(t.order, name)
	return c
}

func printTree(pr *flame.Profile) {
	root := &treeNode{children: map[string]*treeNode{}}
	for stack, w := range pr.Stacks {
		if w <= 0 {
			continue
		}
		node := root
		node.total += w
		for _, f := range flame.SplitStack(stack) {
			node = node.child(f)
			node.total += w
		}
		node.self += w
	}
	fmt.Printf("frame tree (%0.3fs total):\n", secs(root.total))
	var walk func(t *treeNode, depth int)
	walk = func(t *treeNode, depth int) {
		sort.Slice(t.order, func(i, j int) bool {
			a, b := t.children[t.order[i]], t.children[t.order[j]]
			if a.total != b.total {
				return a.total > b.total
			}
			return a.name < b.name
		})
		for _, name := range t.order {
			c := t.children[name]
			self := ""
			if c.self > 0 && len(c.children) > 0 {
				self = fmt.Sprintf(" (self %.3fs)", secs(c.self))
			}
			fmt.Printf("%*s%s %.3fs%s\n", depth*2, "", name, secs(c.total), self)
			walk(c, depth+1)
		}
	}
	walk(root, 1)
}

func runDiff(pathA, pathB string, top int) int {
	a, err := readProfile(pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-prof:", err)
		return 1
	}
	b, err := readProfile(pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-prof:", err)
		return 1
	}
	d := flame.Diff(a, b)
	fmt.Printf("diff: A=%s (%.3fs) vs B=%s (%.3fs); %.3fs of GPU-time moved\n",
		pathA, secs(d.ATotalNanos), pathB, secs(d.BTotalNanos), secs(d.MovedNanos))
	for i, e := range d.Entries {
		if i >= top {
			fmt.Printf("  ... %d more stacks changed\n", len(d.Entries)-top)
			break
		}
		fmt.Printf("  %+12.6fs  (a %10.6fs -> b %10.6fs)  %s\n",
			secs(e.DeltaNanos), secs(e.ANanos), secs(e.BNanos),
			strings.Join(flame.SplitStack(e.Stack), ";"))
	}
	if len(d.Entries) == 0 {
		fmt.Println("  profiles are identical")
	}
	return 0
}
