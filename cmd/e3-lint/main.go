// Command e3-lint runs the internal/analysis suite — the static checkers
// that enforce the simulator's virtual-time, determinism, conservation,
// and single-goroutine invariants — over the repository's packages.
//
// Usage:
//
//	e3-lint [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 0 when the tree is clean, 1 when any analyzer reports a
// diagnostic, and 2 on a load or usage error, mirroring go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"e3/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: e3-lint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the e3 invariant analyzers (default packages: ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewModuleLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		d.Pos.Filename = relPath(wd, d.Pos.Filename)
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "e3-lint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPath shortens filenames to working-directory-relative form when that
// is cleaner; diagnostics stay clickable either way.
func relPath(wd, path string) string {
	rel, err := filepath.Rel(wd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "e3-lint:", err)
	os.Exit(2)
}
