// Command e3-lint runs the internal/analysis suite — the static checkers
// that enforce the simulator's virtual-time, determinism, conservation,
// hot-path allocation, error-propagation, and single-goroutine
// invariants — over the repository's packages.
//
// Usage:
//
//	e3-lint [-list] [-json] [-baseline file] [packages]
//
// Packages default to ./... relative to the enclosing module. With
// -json, findings are emitted as a single JSON document on stdout
// ({"version":1,"findings":[{rule,path,line,col,message}...]}) with
// paths relative to the module root; otherwise one go-vet-style line
// per finding.
//
// With -baseline, findings are matched against the checked-in baseline
// file (same JSON schema, with optional per-entry justifications) by
// (rule, path, message) — line numbers are ignored so unrelated edits
// cannot break the gate. Only non-baselined ("fresh") findings fail the
// run, and baseline entries matching no current finding ("stale") fail
// it too, so the baseline can only shrink without a deliberate edit.
//
// Exit status:
//
//	0  clean (no findings, or every finding baselined and no stale entries)
//	1  fresh findings (violations not covered by the baseline)
//	2  load or usage error (bad flags, unresolvable packages, type errors)
//	3  stale baseline entries only (fixed violations still excused — trim
//	   the baseline; when fresh findings are also present, 1 wins)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"e3/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON document on stdout")
	baselinePath := flag.String("baseline", "", "baseline `file` of triaged findings; fresh findings and stale entries fail the run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: e3-lint [-list] [-json] [-baseline file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the e3 invariant analyzers (default packages: ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewModuleLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	findings := analysis.ToFindings(diags, loader.Root())

	var fresh, stale []analysis.Finding
	fresh = findings
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		fresh, stale = base.Diff(findings)
	}

	if *jsonOut {
		data, err := analysis.MarshalReport(findings)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
	} else {
		for _, d := range diags {
			d.Pos.Filename = relPath(wd, d.Pos.Filename)
			fmt.Println(d)
		}
	}

	for _, f := range stale {
		fmt.Fprintf(os.Stderr, "e3-lint: stale baseline entry: %s %s: %s\n", f.Rule, f.Path, f.Message)
	}
	switch {
	case len(fresh) > 0:
		fmt.Fprintf(os.Stderr, "e3-lint: %d invariant violation(s)", len(fresh))
		if *baselinePath != "" {
			fmt.Fprintf(os.Stderr, " not in baseline %s", *baselinePath)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	case len(stale) > 0:
		fmt.Fprintf(os.Stderr, "e3-lint: %d stale baseline entr(y/ies) in %s — the excused violations are gone, delete them\n", len(stale), *baselinePath)
		os.Exit(3)
	}
}

// relPath shortens filenames to working-directory-relative form when that
// is cleaner; diagnostics stay clickable either way.
func relPath(wd, path string) string {
	rel, err := filepath.Rel(wd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "e3-lint:", err)
	os.Exit(2)
}
