package main

// Flame-profiling entry points: -flame-out/-flame-folded/-flame-pprof run
// the demo workload under the virtual-time compute profiler and export the
// fold; -flame-diff compares two exported JSON profiles. The deeper
// drill-down UI (top/tree/focus views) lives in cmd/e3-prof.

import (
	"fmt"
	"os"
	"strings"

	"e3/internal/experiments"
	"e3/internal/flame"
)

// writeFlameArtifacts exports one profile in whichever of the three
// formats were requested (empty paths are skipped).
func writeFlameArtifacts(prof *flame.Profile, outJSON, outFolded, outPprof string) error {
	if outJSON != "" {
		f, err := os.Create(outJSON)
		if err != nil {
			return err
		}
		err = prof.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote flame profile (JSON) to %s\n", outJSON)
	}
	if outFolded != "" {
		if err := os.WriteFile(outFolded, prof.Folded(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote flame profile (folded stacks) to %s\n", outFolded)
	}
	if outPprof != "" {
		f, err := os.Create(outPprof)
		if err != nil {
			return err
		}
		err = prof.WritePprof(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote flame profile (pprof) to %s — inspect with `go tool pprof %s`\n", outPprof, outPprof)
	}
	return nil
}

// runFlameDemo profiles one demo run (pipeline or the §5.8.7 Serial
// runner on the same seed and plan), exports the fold, and fails if the
// profile does not reconcile exactly against the utilization ledger.
func runFlameDemo(runner, outJSON, outFolded, outPprof string) int {
	fl := flame.NewProfiler(0)
	var (
		err  error
		stat flame.ReconcileStat
	)
	switch runner {
	case "pipeline":
		r, coll, _, e := experiments.RunProfiledDemo(nil, nil, fl, demoHorizon)
		if e != nil {
			err = e
		} else {
			stat = fl.Verify(coll.Util)
			err = r.Err()
		}
	case "serial":
		r, coll, _, e := experiments.RunProfiledSerialDemo(fl, demoHorizon)
		if e != nil {
			err = e
		} else {
			stat = fl.Verify(coll.Util)
			err = r.Err()
		}
	default:
		fmt.Fprintf(os.Stderr, "e3-bench: -flame-runner must be pipeline or serial (got %q)\n", runner)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	prof := fl.Profile()
	if werr := writeFlameArtifacts(prof, outJSON, outFolded, outPprof); werr != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", werr)
		return 1
	}
	fmt.Printf("flame: %s runner, %d stacks, busy %.3fs, bubble %.3fs over %d devices\n",
		runner, len(prof.Stacks), float64(prof.BusyNanos())/1e9, float64(prof.BubbleNanos())/1e9, stat.Devices)
	fmt.Printf("flame reconcile: residual %dns over %d devices — %s\n",
		stat.Residual, stat.Devices, map[bool]string{true: "exact", false: "MISMATCH"}[stat.OK()])
	if !stat.OK() {
		fmt.Fprintln(os.Stderr, "e3-bench: flame profile failed exact reconciliation against the ledger")
		return 1
	}
	return 0
}

// readFlameProfile loads a -flame-out JSON artifact.
func readFlameProfile(path string) (*flame.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return flame.ReadProfile(f)
}

// runFlameDiff compares two exported JSON profiles ("a.json,b.json") and
// prints signed per-stack deltas ranked by |GPU-time moved|.
func runFlameDiff(arg string) int {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "e3-bench: -flame-diff wants two comma-separated profile paths (a.json,b.json)")
		return 2
	}
	a, err := readFlameProfile(parts[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	b, err := readFlameProfile(parts[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	d := flame.Diff(a, b)
	fmt.Printf("flame diff: A=%s (%.3fs) vs B=%s (%.3fs); %.3fs of GPU-time moved\n",
		parts[0], float64(d.ATotalNanos)/1e9, parts[1], float64(d.BTotalNanos)/1e9,
		float64(d.MovedNanos)/1e9)
	const top = 20
	for i, e := range d.Entries {
		if i >= top {
			fmt.Printf("  ... %d more stacks changed\n", len(d.Entries)-top)
			break
		}
		fmt.Printf("  %+12.6fs  (a %10.6fs -> b %10.6fs)  %s\n",
			float64(e.DeltaNanos)/1e9, float64(e.ANanos)/1e9, float64(e.BNanos)/1e9,
			strings.Join(flame.SplitStack(e.Stack), ";"))
	}
	if len(d.Entries) == 0 {
		fmt.Println("  profiles are identical")
	}
	return 0
}
