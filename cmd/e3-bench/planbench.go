package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"e3/internal/bench"
	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/workload"
)

// planBenchCase is one planner problem timed across the three search
// paths: the retained pre-memoization reference, the memoized serial
// search, and the memoized parallel search (default worker pool).
type planBenchCase struct {
	Case     string `json:"case"`
	Layers   int    `json:"layers"`
	GPUs     int    `json:"gpus"`
	Splits   int    `json:"max_splits"`
	Searched int    `json:"candidates_searched"`
	Pruned   int    `json:"candidates_pruned"`

	ReferenceMS    float64 `json:"reference_ms"`
	MemoSerialMS   float64 `json:"memo_serial_ms"`
	MemoParallelMS float64 `json:"memo_parallel_ms"`
	Speedup        float64 `json:"speedup_vs_reference"`
}

// planBenchReport is the machine-readable -plan-bench payload
// (BENCH_PR5.json): before/after planner timings plus the widened search
// the fast path makes affordable.
type planBenchReport struct {
	Note       string          `json:"note"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Cases      []planBenchCase `json:"cases"`

	// LargeSearch runs the paper cluster with doubled boundary candidates
	// and five splits; LargeVsOldDefault compares it to the reference
	// search at the old default size.
	LargeSearchMS     float64 `json:"large_search_ms"`
	LargeMaxCands     int     `json:"large_max_cands"`
	LargeMaxSplits    int     `json:"large_max_splits"`
	LargeSearched     int     `json:"large_candidates_searched"`
	LargeVsOldDefault float64 `json:"large_vs_old_default_reference"`
}

// bestOfSolve times fn three times and returns the fastest wall-clock
// milliseconds.
func bestOfSolve(fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if ms := time.Since(start).Seconds() * 1e3; i == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// planBenchProblems mirrors the BenchmarkSearch grid in
// internal/optimizer/bench_test.go: model scales crossed with cluster
// heterogeneity.
func planBenchProblems() []struct {
	name string
	cfg  optimizer.Config
} {
	mk := func(m *ee.EEModel, batch int, c *cluster.Cluster, slo float64, splits int) optimizer.Config {
		return optimizer.Config{
			Model:   m,
			Profile: profile.FromDist(m, workload.Mix(0.8), 4000, 1),
			Batch:   batch, Cluster: c,
			SLO: slo, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac,
			MaxSplits: splits, Pipelining: true, ModelParallel: true,
		}
	}
	deebert := ee.NewDeeBERT(model.BERTBase(), 0.4)
	large := ee.NewDeeBERT(model.BERTLarge(), 0.4)
	llama := ee.NewLlamaEE(model.Llama318B())
	return []struct {
		name string
		cfg  optimizer.Config
	}{
		{"small/1kind", mk(deebert, 8, cluster.Homogeneous(gpu.V100, 16), 0.100, 3)},
		{"small/4kind", mk(deebert, 8, cluster.PaperEvaluation(), 0.100, 4)},
		{"bert-large/2kind", mk(large, 8, cluster.New(map[gpu.Kind]int{gpu.V100: 12, gpu.A6000: 8}, 4), 0.250, 3)},
		{"bert-large/4kind", mk(large, 8, cluster.PaperEvaluation(), 0.250, 4)},
		{"llama/3kind", mk(llama, 4, cluster.New(map[gpu.Kind]int{gpu.V100: 16, gpu.A6000: 16, gpu.P100: 8}, 4), 2.0, 4)},
	}
}

// runPlanBench times every grid case on all three planner paths, checks
// the winners agree, and writes the report (the BENCH_PR5.json artifact).
func runPlanBench(path string) int {
	rep := planBenchReport{
		Note: "planner wall-clock, best of 3; reference = pre-memoization search " +
			"retained as oracle; memo = segment-cost-table search with dominance pruning",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, p := range planBenchProblems() {
		var refPlan, fastPlan optimizer.Plan
		refMS, err := bestOfSolve(func() (e error) {
			refPlan, e = optimizer.MaximizeGoodputReference(p.cfg)
			return
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "e3-bench: %s: %v\n", p.name, err)
			return 1
		}
		serial := p.cfg
		serial.Workers = -1
		serMS, err := bestOfSolve(func() (e error) {
			fastPlan, e = optimizer.MaximizeGoodput(serial)
			return
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "e3-bench: %s: %v\n", p.name, err)
			return 1
		}
		if refPlan.String() != fastPlan.String() {
			fmt.Fprintf(os.Stderr, "e3-bench: %s: memoized plan diverged from reference\n", p.name)
			return 1
		}
		par := p.cfg
		par.Workers = 0
		parMS, err := bestOfSolve(func() (e error) {
			_, e = optimizer.MaximizeGoodput(par)
			return
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "e3-bench: %s: %v\n", p.name, err)
			return 1
		}
		traced := p.cfg
		traced.Trace = &optimizer.SearchTrace{}
		if _, err := optimizer.MaximizeGoodput(traced); err != nil {
			fmt.Fprintf(os.Stderr, "e3-bench: %s: %v\n", p.name, err)
			return 1
		}
		c := planBenchCase{
			Case:           p.name,
			Layers:         p.cfg.Model.Base.NumLayers(),
			GPUs:           p.cfg.Cluster.Size(),
			Splits:         p.cfg.MaxSplits,
			Searched:       traced.Trace.Enumerated,
			Pruned:         traced.Trace.PrunedCandidates,
			ReferenceMS:    refMS,
			MemoSerialMS:   serMS,
			MemoParallelMS: parMS,
		}
		if serMS > 0 {
			c.Speedup = refMS / serMS
		}
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("%-18s reference %8.2fms  memo %8.2fms  parallel %8.2fms  speedup %6.1fx  (searched %d, pruned %d)\n",
			p.name, refMS, serMS, parMS, c.Speedup, c.Searched, c.Pruned)
	}

	// The widened search: 2x boundary candidates, 5 splits, on the paper
	// cluster — affordable now, compared against the old default-size
	// reference search.
	large := optimizer.Config{}
	for _, p := range planBenchProblems() {
		if p.name == "small/4kind" {
			large = p.cfg
			break
		}
	}
	oldRefMS := rep.Cases[1].ReferenceMS
	large.MaxBoundaryCands = 20
	large.MaxSplits = 5
	largeTrace := &optimizer.SearchTrace{}
	largeMS, err := bestOfSolve(func() error {
		c := large
		c.Trace = nil
		_, e := optimizer.MaximizeGoodput(c)
		return e
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench: large search:", err)
		return 1
	}
	large.Trace = largeTrace
	if _, err := optimizer.MaximizeGoodput(large); err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench: large search:", err)
		return 1
	}
	rep.LargeSearchMS = largeMS
	rep.LargeMaxCands = 20
	rep.LargeMaxSplits = 5
	rep.LargeSearched = largeTrace.Enumerated
	if largeMS > 0 {
		rep.LargeVsOldDefault = oldRefMS / largeMS
	}
	fmt.Printf("%-18s memo %8.2fms (searched %d) — %.1fx faster than the reference at the OLD default size\n",
		"large(20c/5s)", largeMS, rep.LargeSearched, rep.LargeVsOldDefault)

	env, err := bench.Wrap("plan-bench", 0, nil, map[string]float64{
		"large_search_ms":           rep.LargeSearchMS,
		"large_vs_old_default_ref":  rep.LargeVsOldDefault,
		"large_candidates_searched": float64(rep.LargeSearched),
	}, rep)
	if err == nil {
		err = bench.WriteFile(path, env)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	fmt.Printf("wrote planner benchmarks to %s\n", path)
	return 0
}
