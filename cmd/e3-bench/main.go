// Command e3-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	e3-bench -list                 # list experiment IDs
//	e3-bench -fig fig07            # run one experiment
//	e3-bench -all                  # run everything (several minutes)
//	e3-bench fig07 fig12 fig19     # run a selection
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"e3/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	fig := flag.String("fig", "", "run a single experiment by ID")
	all := flag.Bool("all", false, "run every registered experiment")
	auditRun := flag.Bool("audit", false, "run the lifecycle conservation audit (bursty open loop, all runners); exits nonzero on violations")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "e3-bench: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *auditRun {
		start := time.Now()
		t, violations := experiments.RunAudit()
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
		} else {
			t.Print(os.Stdout)
			fmt.Printf("  (completed in %.1fs)\n\n", time.Since(start).Seconds())
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "e3-bench: audit found %d conservation violation(s)\n", violations)
			os.Exit(1)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{*fig}
	default:
		ids = flag.Args()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "e3-bench: nothing to run; try -list, -all, or -fig <id>")
		os.Exit(2)
	}

	exit := 0
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", err)
			exit = 1
			continue
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Print(os.Stdout)
			fmt.Printf("  (completed in %.1fs)\n\n", time.Since(start).Seconds())
		}
	}
	os.Exit(exit)
}
