// Command e3-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	e3-bench -list                 # list experiment IDs
//	e3-bench -fig fig07            # run one experiment
//	e3-bench -all                  # run everything (several minutes)
//	e3-bench fig07 fig12 fig19     # run a selection
//	e3-bench -trace-out demo.json  # export a Perfetto-loadable timeline
//	e3-bench -bench-out bench.json # machine-readable perf + overhead stats
//	e3-bench -windows 20 -audit    # windowed replan loop + conservation gate
//	e3-bench -plan-bench BENCH_PR5.json  # planner search-path timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"e3/internal/bench"
	"e3/internal/experiments"
	"e3/internal/flame"
	"e3/internal/forecast"
	"e3/internal/replan"
	"e3/internal/slo"
	"e3/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	fig := flag.String("fig", "", "run a single experiment by ID")
	all := flag.Bool("all", false, "run every registered experiment")
	auditRun := flag.Bool("audit", false, "run the lifecycle conservation audit (bursty open loop, all runners); exits nonzero on violations")
	format := flag.String("format", "table", "output format: table or csv")
	traceOut := flag.String("trace-out", "", "run the traced demo and write its Chrome trace-event timeline to FILE (load at ui.perfetto.dev); exits nonzero if the run fails its audit")
	benchOut := flag.String("bench-out", "", "run the traced demo and write machine-readable stats (throughput, latency quantiles, per-split utilization, telemetry overhead) to FILE")
	windows := flag.Int("windows", 0, "run the windowed replan loop (drifting mix, ARIMA vs persistence on the same seed) for N windows; combines with -audit (conservation gate), -bench-out, and -trace-out")
	planBench := flag.String("plan-bench", "", "time the planner search paths (reference vs memoized, serial vs parallel) across the model/cluster grid and write the JSON report to FILE")
	simBench := flag.String("sim-bench", "", "run the data-plane fast-path benchmark (paper-scale 9000 req/s x 1h trace, engine churn micro, pooled-vs-unpooled determinism check) and write the JSON report to FILE")
	bundleOnFailure := flag.String("bundle-on-failure", "", "with -windows: attach the flight recorder and, if any trigger fires (audit violation, SLO burn breach, engine abort), write its diagnostic bundle to FILE")
	attrOut := flag.String("attr-out", "", "with -windows: write the per-request latency-attribution dump (component totals, per-stage compute, top-k slowest breakdowns) to FILE")
	sloTarget := flag.Float64("slo-target", slo.DefaultTarget, "with -windows: SLO attainment target the error budget is tracked against")
	burnThreshold := flag.Float64("burn-threshold", slo.DefaultBurnThreshold, "with -windows: burn-rate alert threshold (1 = burning exactly the budget)")
	flameOut := flag.String("flame-out", "", "run under the virtual-time compute profiler and write the JSON flame profile to FILE (with -windows: profile of the whole replan run); exits nonzero unless the profile reconciles exactly")
	flameFolded := flag.String("flame-folded", "", "like -flame-out but write collapsed-stack text (flamegraph.pl / speedscope input)")
	flamePprof := flag.String("flame-pprof", "", "like -flame-out but write a gzip pprof profile.proto (`go tool pprof FILE`)")
	flameRunner := flag.String("flame-runner", "pipeline", "runner for the flame demo run: pipeline or serial (§5.8.7 phase-synchronized baseline)")
	flameDiff := flag.String("flame-diff", "", "compare two -flame-out JSON profiles (\"a.json,b.json\") and print signed per-stack GPU-time deltas ranked by |time moved|")
	fleetN := flag.Int("fleet", 0, "run the fleet demo with N replica shards (multi-tenant zoo, GPU-aware epoch routing) and print per-replica accounting")
	fleetWorkers := flag.Int("fleet-workers", 0, "with -fleet: shard-runner worker count (0 = one per shard); any count reproduces the serial reference byte-for-byte")
	fleetBench := flag.String("fleet-bench", "", "run the 1/2/4/8-shard fleet scaling curve (parallel-vs-serial digest check at every point) and write the JSON report to FILE")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "e3-bench: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *flameDiff != "" {
		os.Exit(runFlameDiff(*flameDiff))
	}

	if *planBench != "" {
		os.Exit(runPlanBench(*planBench))
	}

	if *simBench != "" {
		os.Exit(runSimBench(*simBench))
	}

	if *fleetBench != "" {
		os.Exit(runFleetBench(*fleetBench))
	}

	if *fleetN > 0 {
		workers := *fleetWorkers
		if workers <= 0 {
			workers = *fleetN
		}
		os.Exit(runFleetOnce(*fleetN, workers))
	}

	if *windows > 0 {
		os.Exit(runReplan(*windows, *auditRun, *benchOut, *traceOut, *bundleOnFailure, *attrOut, *sloTarget, *burnThreshold,
			*flameOut, *flameFolded, *flamePprof))
	}

	if *flameOut != "" || *flameFolded != "" || *flamePprof != "" {
		os.Exit(runFlameDemo(*flameRunner, *flameOut, *flameFolded, *flamePprof))
	}

	if *traceOut != "" || *benchOut != "" {
		exit := 0
		if *traceOut != "" {
			if err := exportTrace(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "e3-bench:", err)
				exit = 1
			}
		}
		if *benchOut != "" {
			if err := exportBench(*benchOut); err != nil {
				fmt.Fprintln(os.Stderr, "e3-bench:", err)
				exit = 1
			}
		}
		os.Exit(exit)
	}

	if *auditRun {
		start := time.Now()
		t, violations := experiments.RunAudit()
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
		} else {
			t.Print(os.Stdout)
			fmt.Printf("  (completed in %.1fs)\n\n", time.Since(start).Seconds())
		}
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "e3-bench: audit found %d conservation violation(s)\n", violations)
			os.Exit(1)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *fig != "":
		ids = []string{*fig}
	default:
		ids = flag.Args()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "e3-bench: nothing to run; try -list, -all, or -fig <id>")
		os.Exit(2)
	}

	exit := 0
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", err)
			exit = 1
			continue
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Print(os.Stdout)
			fmt.Printf("  (completed in %.1fs)\n\n", time.Since(start).Seconds())
		}
	}
	os.Exit(exit)
}

// demoHorizon is virtual seconds of bursty arrivals for the traced demo
// (the audit experiment's setting).
const demoHorizon = 10.0

// exportTrace runs the traced demo with an unbounded tracer and writes
// the full span timeline as Chrome trace-event JSON, printing the
// per-split occupancy summary and the audit verdict.
func exportTrace(path string) error {
	tr := telemetry.New()
	rep, _, plan, err := experiments.RunTracedDemo(tr, demoHorizon)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChrome(f, tr.Spans()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("plan: %s\n", plan)
	telemetry.Summarize(tr.Spans()).Print(os.Stdout)
	fmt.Printf("%s\n", rep)
	fmt.Printf("wrote %d spans to %s\n", len(tr.Spans()), path)
	return rep.Err()
}

// benchSplit is one split's occupancy in the bench report.
type benchSplit struct {
	Split     int     `json:"split"`
	GPUs      int     `json:"gpus"`
	Util      float64 `json:"utilization"`
	BubbleS   float64 `json:"bubble_gpu_seconds"`
	MeanBatch float64 `json:"mean_batch"`
}

// benchReport is the machine-readable -bench-out payload.
type benchReport struct {
	Experiment      string       `json:"experiment"`
	HorizonVirtualS float64      `json:"horizon_virtual_s"`
	Samples         int          `json:"samples"`
	Completed       int          `json:"completed"`
	Dropped         int          `json:"dropped"`
	ThroughputRPS   float64      `json:"throughput_rps"`
	P50MS           float64      `json:"p50_ms"`
	P99MS           float64      `json:"p99_ms"`
	Splits          []benchSplit `json:"splits"`
	// Wall-clock cost of the demo run with telemetry off vs. with a
	// 4096-span ring attached (best of three), and the relative overhead.
	UntracedWallMS       float64 `json:"untraced_wall_ms"`
	TracedWallMS         float64 `json:"traced_wall_ms"`
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
}

// bestOfWall times fn three times and returns the fastest wall-clock
// duration in milliseconds.
func bestOfWall(fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if ms := time.Since(start).Seconds() * 1e3; i == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// exportBench measures the traced demo and writes the JSON report.
func exportBench(path string) error {
	// Stats run: unbounded tracer for the occupancy summary.
	tr := telemetry.New()
	rep, coll, _, err := experiments.RunTracedDemo(tr, demoHorizon)
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}
	out := benchReport{
		Experiment:      "traced-demo (BERT-Base DeeBERT, V100x8, bursty open loop)",
		HorizonVirtualS: demoHorizon,
		Samples:         rep.Samples,
		Completed:       rep.Completed,
		Dropped:         rep.Dropped,
		ThroughputRPS:   float64(rep.Completed) / demoHorizon,
		P50MS:           coll.Lat.Quantile(0.50) * 1e3,
		P99MS:           coll.Lat.Quantile(0.99) * 1e3,
	}
	for _, sp := range telemetry.Summarize(tr.Spans()).Splits {
		out.Splits = append(out.Splits, benchSplit{
			Split: sp.Stage, GPUs: sp.Tracks, Util: sp.Util,
			BubbleS: sp.Bubble, MeanBatch: sp.MeanBatch,
		})
	}

	// Overhead runs: telemetry off vs. the live-serving ring config.
	off, err := bestOfWall(func() error {
		_, _, _, err := experiments.RunTracedDemo(nil, demoHorizon)
		return err
	})
	if err != nil {
		return err
	}
	on, err := bestOfWall(func() error {
		_, _, _, err := experiments.RunTracedDemo(telemetry.NewRing(4096), demoHorizon)
		return err
	})
	if err != nil {
		return err
	}
	out.UntracedWallMS = off
	out.TracedWallMS = on
	if off > 0 {
		out.TelemetryOverheadPct = (on - off) / off * 100
	}

	env, err := bench.Wrap("traced-demo", experiments.DemoSeed,
		&bench.TraceParams{HorizonS: demoHorizon, AvgRate: experiments.DemoAvgRate, Batch: experiments.DemoBatch},
		map[string]float64{
			"throughput_rps":         out.ThroughputRPS,
			"p99_ms":                 out.P99MS,
			"telemetry_overhead_pct": out.TelemetryOverheadPct,
		}, out)
	if err != nil {
		return err
	}
	if err := bench.WriteFile(path, env); err != nil {
		return err
	}
	fmt.Printf("wrote benchmark stats to %s (throughput %.1f req/s, p99 %.1fms, telemetry overhead %.1f%%)\n",
		path, out.ThroughputRPS, out.P99MS, out.TelemetryOverheadPct)
	return nil
}

// replanReport is the machine-readable -windows -bench-out payload.
type replanReport struct {
	Experiment string  `json:"experiment"`
	Windows    int     `json:"windows"`
	WindowDurS float64 `json:"window_dur_s"`
	Seed       int64   `json:"seed"`

	Replans         int      `json:"replans"`
	PlanChanges     int      `json:"plan_changes"`
	PlanCacheHits   int      `json:"plan_cache_hits"`
	PlanCacheMisses int      `json:"plan_cache_misses"`
	FinalPlan       string   `json:"final_plan"`
	PlanDiffs       []string `json:"plan_diffs"`

	// Forecast accuracy of the primary (ARIMA) run vs. the persistence
	// baseline on the same seed and workload drift.
	ForecastMAEARIMA       float64 `json:"forecast_mae_arima"`
	ForecastMAEPersistence float64 `json:"forecast_mae_persistence"`
	ARIMABeatsPersistence  bool    `json:"arima_beats_persistence"`

	AuditSamples    int `json:"audit_samples"`
	AuditCompleted  int `json:"audit_completed"`
	AuditDropped    int `json:"audit_dropped"`
	AuditViolations int `json:"audit_violations"`

	// Error-budget accounting across the run (per-window detail rides in
	// per_window[].budget).
	SLOTarget      float64 `json:"slo_target"`
	BudgetBreaches int     `json:"budget_breaches"`

	// Flame profiling of the whole replan run (only with -flame-*): the
	// exact-reconcile verdict plus each window's own busy/bubble time
	// (deltas of the cumulative boundary snapshots).
	FlameReconcile *flame.ReconcileStat `json:"flame_reconcile,omitempty"`
	FlameWindows   []flameWindowStat    `json:"flame_windows,omitempty"`

	PerWindow []replan.WindowStat `json:"per_window"`
}

// flameWindowStat is one window's own compute, from differencing
// consecutive cumulative flame snapshots at window boundaries.
type flameWindowStat struct {
	Window      int   `json:"window"`
	BusyNanos   int64 `json:"busy_nanos"`
	BubbleNanos int64 `json:"bubble_nanos"`
}

// flameWindowStats turns the replan loop's cumulative per-boundary
// snapshots into per-window deltas.
func flameWindowStats(snaps []*flame.Profile) []flameWindowStat {
	out := make([]flameWindowStat, 0, len(snaps))
	var prevBusy, prevBubble int64
	for i, pr := range snaps {
		busy, bubble := pr.BusyNanos(), pr.BubbleNanos()
		out = append(out, flameWindowStat{
			Window: i, BusyNanos: busy - prevBusy, BubbleNanos: bubble - prevBubble,
		})
		prevBusy, prevBubble = busy, bubble
	}
	return out
}

// runReplan drives the windowed predict→plan→serve→observe loop on the
// drifting-mix demo, prints the per-window table, and returns the process
// exit code. auditGate makes any conservation or reconcile violation
// fatal (the `make verify` gate). bundlePath arms the flight recorder and
// dumps its bundle when any trigger fires; attrPath writes the
// per-request latency-attribution dump.
func runReplan(windows int, auditGate bool, benchPath, tracePath, bundlePath, attrPath string, sloTarget, burnThreshold float64,
	flameOut, flameFolded, flamePprof string) int {
	var tr *telemetry.Tracer
	if tracePath != "" {
		tr = telemetry.New()
	}
	cfg := replan.DriftingDemo(windows, forecast.MethodARIMA, tr)
	attr := slo.NewAttribution(slo.DefaultTopK)
	cfg.Attr = attr
	cfg.SLOTarget = sloTarget
	cfg.BurnThreshold = burnThreshold
	var fl *flame.Profiler
	if flameOut != "" || flameFolded != "" || flamePprof != "" {
		fl = flame.NewProfiler(0)
		cfg.Flame = fl
	}
	var rec *slo.Recorder
	if bundlePath != "" {
		// The recorder needs a span ring to snapshot; give the run one
		// when -trace-out didn't already attach a tracer.
		if cfg.Tracer == nil {
			cfg.Tracer = telemetry.NewRing(2048)
		}
		rec = &slo.Recorder{}
		cfg.Recorder = rec
	}
	start := time.Now()
	res, err := replan.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	// Persistence baseline: same seed, same drift, forecaster swapped.
	base, err := replan.Run(replan.DriftingDemo(windows, forecast.MethodPersistence, nil))
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}

	fmt.Printf("replan loop: %d windows x 2s virtual (drifting mix, ARIMA forecaster)\n\n", windows)
	fmt.Printf("%-7s %-10s %-9s %-7s %-8s %-9s %-8s %-8s %-7s %s\n",
		"window", "goodput/s", "slo-att", "burn", "bgt-rem", "fcst-mae", "drift", "replan", "cache", "plan")
	for _, ws := range res.Windows {
		mark := "-"
		switch {
		case ws.PlanChanged:
			mark = "CHANGED"
		case ws.Replanned:
			mark = "kept"
		}
		cache := "-"
		switch {
		case ws.PlanCacheHit:
			cache = "hit"
		case ws.Replanned:
			cache = "miss"
		}
		burn := fmt.Sprintf("%.2f", ws.Budget.BurnRate)
		if ws.Budget.Breached {
			burn += "!"
		}
		fmt.Printf("%-7d %-10.0f %-9.3f %-7s %-8.3f %-9.4f %-8.3f %-8v %-7s %s\n",
			ws.Window, ws.Goodput, ws.SLOAttainment, burn, ws.Budget.BudgetRemaining,
			ws.ForecastMAE, ws.Drift, ws.Replanned, cache, mark)
	}
	fmt.Println()
	for _, d := range res.Diffs.Items() {
		fmt.Println(d.String())
	}
	fmt.Printf("\nreplans: %d (%d plan changes, %d plan-cache hits / %d misses); final plan: %s\n",
		res.Replans, res.PlanChanges, res.PlanCacheHits, res.PlanCacheMisses, res.FinalPlan)
	fmt.Printf("forecast MAE: arima %.4f vs persistence %.4f\n", res.MeanForecastMAE, base.MeanForecastMAE)
	fmt.Printf("SLO budget: target %.3f, %d/%d windows breached burn threshold %.1f\n",
		res.Budget.Target(), res.Budget.Breaches(), res.Budget.Windows(), res.Budget.BurnThreshold())
	completed, dropped, attributed := attr.Counts()
	fmt.Printf("attribution: %d completed / %d dropped, %d breakdowns folded, %d sum mismatches (max residual %.3g s)\n",
		completed, dropped, attributed, attr.Mismatches(), attr.MaxResidual())
	fmt.Printf("%s\n", res.Report)
	fmt.Printf("(completed in %.1fs)\n", time.Since(start).Seconds())

	if tracePath != "" {
		f, ferr := os.Create(tracePath)
		if ferr == nil {
			ferr = telemetry.WriteChrome(f, tr.Spans())
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", ferr)
			return 1
		}
		fmt.Printf("wrote %d spans to %s\n", len(tr.Spans()), tracePath)
	}
	if bundlePath != "" {
		if rec.TriggerCount() == 0 {
			fmt.Println("flight recorder: no triggers fired; no bundle written")
		} else {
			f, ferr := os.Create(bundlePath)
			if ferr == nil {
				ferr = rec.Last().WriteJSON(f)
				if cerr := f.Close(); ferr == nil {
					ferr = cerr
				}
			}
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "e3-bench:", ferr)
				return 1
			}
			fmt.Printf("flight recorder: %d trigger(s) fired; wrote bundle to %s\n", rec.TriggerCount(), bundlePath)
		}
	}
	if attrPath != "" {
		f, ferr := os.Create(attrPath)
		if ferr == nil {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			ferr = enc.Encode(attr.Dump())
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", ferr)
			return 1
		}
		fmt.Printf("wrote attribution dump to %s\n", attrPath)
	}
	if fl != nil {
		if werr := writeFlameArtifacts(fl.Profile(), flameOut, flameFolded, flamePprof); werr != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", werr)
			return 1
		}
		fmt.Printf("flame reconcile: residual %dns over %d devices — %s\n",
			res.FlameStat.Residual, res.FlameStat.Devices,
			map[bool]string{true: "exact", false: "MISMATCH"}[res.FlameStat.OK()])
	}
	if benchPath != "" {
		out := replanReport{
			Experiment:             "replan-loop (BERT-Base DeeBERT, V100x8, easy mix 0.9->0.3)",
			Windows:                windows,
			WindowDurS:             2.0,
			Seed:                   424242,
			Replans:                res.Replans,
			PlanChanges:            res.PlanChanges,
			PlanCacheHits:          res.PlanCacheHits,
			PlanCacheMisses:        res.PlanCacheMisses,
			FinalPlan:              res.FinalPlan.String(),
			PlanDiffs:              []string{},
			ForecastMAEARIMA:       res.MeanForecastMAE,
			ForecastMAEPersistence: base.MeanForecastMAE,
			ARIMABeatsPersistence:  res.MeanForecastMAE < base.MeanForecastMAE,
			AuditSamples:           res.Report.Samples,
			AuditCompleted:         res.Report.Completed,
			AuditDropped:           res.Report.Dropped,
			AuditViolations:        len(res.Report.Violations),
			SLOTarget:              res.Budget.Target(),
			BudgetBreaches:         res.Budget.Breaches(),
			PerWindow:              res.Windows,
		}
		for _, d := range res.Diffs.Items() {
			out.PlanDiffs = append(out.PlanDiffs, d.String())
		}
		if fl != nil {
			stat := res.FlameStat
			out.FlameReconcile = &stat
			out.FlameWindows = flameWindowStats(res.FlameWindows)
		}
		env, werr := bench.Wrap("replan-loop", out.Seed,
			&bench.TraceParams{Windows: windows, WindowDurS: out.WindowDurS, AvgRate: experiments.DemoAvgRate, Batch: experiments.DemoBatch},
			map[string]float64{
				"replans":            float64(res.Replans),
				"plan_changes":       float64(res.PlanChanges),
				"forecast_mae_arima": res.MeanForecastMAE,
				"budget_breaches":    float64(res.Budget.Breaches()),
			}, out)
		if werr == nil {
			werr = bench.WriteFile(benchPath, env)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", werr)
			return 1
		}
		fmt.Printf("wrote replan stats to %s\n", benchPath)
	}

	if auditGate {
		if err := res.Report.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", err)
			return 1
		}
		if err := base.Report.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench: persistence baseline:", err)
			return 1
		}
		fmt.Println("audit: ok (sample lifecycle conserved across all plan switches)")
	}
	return 0
}
