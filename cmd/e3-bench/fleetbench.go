package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"e3/internal/bench"
	"e3/internal/fleet"
)

// fleetPoint is one shard count on the scaling curve.
type fleetPoint struct {
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	Minted     int     `json:"minted"`
	Served     int     `json:"served"`
	DoorShed   int     `json:"door_shed"`
	Events     uint64  `json:"events"`
	WallS      float64 `json:"wall_s"`
	EventsPerS float64 `json:"events_per_sec"`
	// ScalingX is this point's aggregate events/s over the 1-shard
	// point's.
	ScalingX float64 `json:"scaling_x"`
	// DigestOK confirms the parallel run reproduced the serial reference
	// (workers=1, shards in index order) byte-for-byte: every per-shard
	// ledger digest and the router decision log.
	DigestOK bool `json:"parallel_equals_serial"`
}

// fleetBenchReport is the machine-readable -fleet-bench payload
// (BENCH_PR10.json).
type fleetBenchReport struct {
	Note       string       `json:"note"`
	GoMaxProcs int          `json:"gomaxprocs"`
	HorizonS   float64      `json:"horizon_virtual_s"`
	EpochDurS  float64      `json:"epoch_dur_s"`
	Tenants    []string     `json:"tenants"`
	Curve      []fleetPoint `json:"curve"`
	// DeterminismOK is the AND of every point's DigestOK.
	DeterminismOK bool `json:"determinism_parallel_equals_serial"`
	// ScalingAt8 is the 8-shard point's aggregate events/s over the
	// 1-shard point's. On a multi-core host this is the ≥4x headline; on
	// a 1-core host it degenerates to ~1x (shards serialize) and the
	// fleetgate's timing half documents that it cannot run.
	ScalingAt8 float64 `json:"scaling_at_8_shards"`
}

// runFleetOnce executes one fleet configuration and prints its summary.
func runFleetOnce(shards, workers int) int {
	cfg := fleet.DemoConfig(shards, workers)
	start := time.Now()
	res, err := fleet.Run(cfg)
	wall := time.Since(start).Seconds()
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	fmt.Printf("fleet: %d shard(s) x %d worker(s), %d epochs over %gs virtual\n",
		shards, workers, res.Epochs, cfg.Horizon)
	fmt.Printf("%-8s %-14s %-10s %-10s %-10s %-10s %s\n",
		"replica", "gpus", "routed", "served", "violated", "dropped", "events")
	for _, sr := range res.Shards {
		routed, served, violated, dropped := 0, 0, 0, 0
		for _, tr := range sr.Tenants {
			routed += tr.Routed
			served += tr.Served
			violated += tr.Violations
			dropped += tr.Dropped
		}
		fmt.Printf("%-8d %-14s %-10d %-10d %-10d %-10d %d\n",
			sr.Index, sr.GPUs, routed, served, violated, dropped, sr.Events)
	}
	fmt.Printf("\nfront door: %d minted = %d routed + %d shed; %d events in %.2fs wall (%.0f events/s)\n",
		res.Minted, res.Routed, res.DoorShed, res.Events, wall, float64(res.Events)/wall)
	return 0
}

// runFleetBench measures the 1/2/4/8-shard scaling curve with a
// parallel-vs-serial digest check at every point and writes
// BENCH_PR10.json.
func runFleetBench(outPath string) int {
	rep := fleetBenchReport{
		Note: "fleet tier: sharded parallel simulation with GPU-aware routing; " +
			"aggregate events/s across N replica shards at N workers, with every " +
			"parallel run checked byte-identical against its serial reference",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		DeterminismOK: true,
	}
	probe := fleet.DemoConfig(1, 1)
	rep.HorizonS, rep.EpochDurS = probe.Horizon, probe.EpochDur
	for _, t := range probe.Tenants {
		rep.Tenants = append(rep.Tenants, t.Name)
	}

	base := 0.0
	for _, shards := range []int{1, 2, 4, 8} {
		// Serial reference first: digests to compare against, run cold so
		// the timed parallel run below owns its own caches.
		ref, err := fleet.Run(fleet.DemoConfig(shards, 1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", err)
			return 1
		}
		cfg := fleet.DemoConfig(shards, shards)
		start := time.Now()
		res, err := fleet.Run(cfg)
		wall := time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", err)
			return 1
		}
		pt := fleetPoint{
			Shards:     shards,
			Workers:    cfg.Workers,
			Minted:     res.Minted,
			Served:     res.Served,
			DoorShed:   res.DoorShed,
			Events:     res.Events,
			WallS:      wall,
			EventsPerS: float64(res.Events) / wall,
			DigestOK:   res.Digests() == ref.Digests(),
		}
		if shards == 1 {
			base = pt.EventsPerS
		}
		if base > 0 {
			pt.ScalingX = pt.EventsPerS / base
		}
		rep.DeterminismOK = rep.DeterminismOK && pt.DigestOK
		rep.Curve = append(rep.Curve, pt)
		fmt.Printf("fleet-bench: %d shards x %d workers — %d events in %.2fs wall (%.0f events/s, %.2fx), parallel==serial: %v\n",
			pt.Shards, pt.Workers, pt.Events, pt.WallS, pt.EventsPerS, pt.ScalingX, pt.DigestOK)
		if shards == 8 {
			rep.ScalingAt8 = pt.ScalingX
		}
	}
	if !rep.DeterminismOK {
		fmt.Fprintln(os.Stderr, "e3-bench: a parallel fleet run diverged from its serial reference — determinism violation")
		return 1
	}

	env, err := bench.Wrap("fleet-bench", probe.Seed,
		&bench.TraceParams{HorizonS: rep.HorizonS},
		map[string]float64{
			"scaling_at_8_shards": rep.ScalingAt8,
			"events_per_sec_1":    rep.Curve[0].EventsPerS,
			"events_per_sec_8":    rep.Curve[len(rep.Curve)-1].EventsPerS,
		}, rep)
	if err == nil {
		err = bench.WriteFile(outPath, env)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	fmt.Printf("wrote %s (scaling at 8 shards: %.2fx on GOMAXPROCS=%d)\n", outPath, rep.ScalingAt8, rep.GoMaxProcs)
	return 0
}
