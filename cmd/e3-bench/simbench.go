package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"e3/internal/bench"
	"e3/internal/experiments"
	"e3/internal/sim"
)

// simTraceStats is the paper-scale end-to-end measurement: the full
// serving stack (generator → batcher → pipeline → collector, sampled
// ledger attached) consuming a 9000 req/s × 1 h Poisson trace.
type simTraceStats struct {
	Rate        float64 `json:"rate_req_per_s"`
	HorizonS    float64 `json:"horizon_s"`
	Requests    int     `json:"requests"`
	Events      uint64  `json:"events"`
	WallS       float64 `json:"wall_s"`
	EventsPerS  float64 `json:"events_per_sec"`
	AllocsPerEv float64 `json:"allocs_per_event"`
	Completed   int     `json:"completed"`
	Dropped     int     `json:"dropped"`
	Goodput     float64 `json:"goodput_req_per_s"`
	AuditStride int64   `json:"audit_stride"`
	AuditOK     bool    `json:"audit_ok"`
}

// simEngineStats compares the index-based value heap against the retained
// pointer-heap reference on a pure push/pop churn loop.
type simEngineStats struct {
	Events            uint64  `json:"events"`
	ReferenceNsPerEv  float64 `json:"reference_ns_per_event"`
	FastNsPerEv       float64 `json:"fast_ns_per_event"`
	ReferenceAllocsEv float64 `json:"reference_allocs_per_event"`
	FastAllocsEv      float64 `json:"fast_allocs_per_event"`
	Speedup           float64 `json:"speedup"`
}

// simBenchReport is the machine-readable -sim-bench payload
// (BENCH_PR6.json).
type simBenchReport struct {
	Note       string         `json:"note"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Trace      simTraceStats  `json:"trace"`
	Engine     simEngineStats `json:"engine"`

	// DeterminismOK confirms pooled and unpooled runs of the same seeds
	// produced byte-identical exhaustive ledger digests.
	DeterminismOK    bool    `json:"determinism_pooled_equals_unpooled"`
	DeterminismSeeds []int64 `json:"determinism_seeds"`

	// Baseline pins the pre-fast-path numbers this report is compared
	// against (measured on the same 9000 req/s workload before the PR).
	BaselineEventsPerS  float64 `json:"baseline_events_per_sec"`
	BaselineAllocsPerEv float64 `json:"baseline_allocs_per_event"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline"`
}

// mallocs reads the cumulative allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// simEngineAPI is the surface the churn micro-benchmark needs; both heap
// implementations satisfy it.
type simEngineAPI interface {
	After(d float64, fn func())
	Step() bool
}

// churn drives n self-rescheduling events through an engine, returning
// ns/event and allocs/event.
func churn(eng simEngineAPI, n uint64) (nsPerEv, allocsPerEv float64) {
	var processed uint64
	var tick func()
	tick = func() {
		processed++
		if processed+1024 <= n {
			// Pseudo-random-ish but deterministic delays exercise sift paths.
			eng.After(float64(processed%97)*1e-4+1e-6, tick)
		}
	}
	for i := 0; i < 1024; i++ {
		eng.After(float64(i%89)*1e-4, tick)
	}
	m0 := mallocs()
	start := time.Now()
	for eng.Step() {
	}
	wall := time.Since(start)
	dm := mallocs() - m0
	return float64(wall.Nanoseconds()) / float64(processed), float64(dm) / float64(processed)
}

// runSimBench measures the data-plane fast path and writes BENCH_PR6.json.
func runSimBench(outPath string) int {
	rep := simBenchReport{
		Note: "data-plane fast path: value-heap engine, pooled batches, grouped " +
			"completion events, sampled conservation audit; baseline measured pre-PR " +
			"on the same workload",
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		BaselineEventsPerS:  155_259,
		BaselineAllocsPerEv: 4.78,
	}

	// Engine micro: pure heap churn, fast vs reference.
	const microEvents = 2_000_000
	refNs, refAllocs := churn(sim.NewReferenceEngine(), microEvents)
	fastNs, fastAllocs := churn(sim.NewEngine(), microEvents)
	rep.Engine = simEngineStats{
		Events:            microEvents,
		ReferenceNsPerEv:  refNs,
		FastNsPerEv:       fastNs,
		ReferenceAllocsEv: refAllocs,
		FastAllocsEv:      fastAllocs,
		Speedup:           refNs / fastNs,
	}
	fmt.Printf("engine churn: reference %.1f ns/event (%.2f allocs), fast %.1f ns/event (%.2f allocs), %.1fx\n",
		refNs, refAllocs, fastNs, fastAllocs, rep.Engine.Speedup)

	// Determinism: pooled vs unpooled byte-identical exhaustive digests.
	rep.DeterminismSeeds = []int64{1, 42, 97}
	rep.DeterminismOK = true
	detCfg := experiments.DefaultSimBench()
	detCfg.Rate, detCfg.Horizon, detCfg.AuditStride = 3000, 4, 1
	detPlan, err := experiments.PlanSimBench(detCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	detCfg.Plan = &detPlan
	for _, seed := range rep.DeterminismSeeds {
		detCfg.Seed = seed
		detCfg.Pooled = true
		pooled, err := experiments.RunSimBench(detCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", err)
			return 1
		}
		detCfg.Pooled = false
		plain, err := experiments.RunSimBench(detCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "e3-bench:", err)
			return 1
		}
		if pooled.Digest != plain.Digest || pooled.Events != plain.Events {
			rep.DeterminismOK = false
		}
	}
	if !rep.DeterminismOK {
		fmt.Fprintln(os.Stderr, "e3-bench: pooled and unpooled runs diverged — determinism violation")
		return 1
	}
	fmt.Printf("determinism: pooled == unpooled across seeds %v\n", rep.DeterminismSeeds)

	// Paper-scale trace: 9000 req/s for a virtual hour, timed end to end
	// with planning outside the timed region.
	cfg := experiments.DefaultSimBench()
	plan, err := experiments.PlanSimBench(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	cfg.Plan = &plan
	m0 := mallocs()
	start := time.Now()
	res, err := experiments.RunSimBench(cfg)
	wall := time.Since(start).Seconds()
	dm := mallocs() - m0
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	rep.Trace = simTraceStats{
		Rate:        cfg.Rate,
		HorizonS:    cfg.Horizon,
		Requests:    res.Requests,
		Events:      res.Events,
		WallS:       wall,
		EventsPerS:  float64(res.Events) / wall,
		AllocsPerEv: float64(dm) / float64(res.Events),
		Completed:   res.Completed,
		Dropped:     res.Dropped,
		Goodput:     res.Goodput,
		AuditStride: cfg.AuditStride,
		AuditOK:     res.AuditOK,
	}
	rep.SpeedupVsBaseline = rep.Trace.EventsPerS / rep.BaselineEventsPerS
	fmt.Printf("trace: %d requests, %d events in %.2fs wall — %.0f events/s (%.2f allocs/event), %.1fx the pre-PR baseline, audit ok=%v\n",
		res.Requests, res.Events, wall, rep.Trace.EventsPerS, rep.Trace.AllocsPerEv, rep.SpeedupVsBaseline, res.AuditOK)
	if !res.AuditOK {
		fmt.Fprintf(os.Stderr, "e3-bench: conservation audit failed: %v\n", res.Report.Violations)
		return 1
	}

	env, err := bench.Wrap("sim-bench", 0,
		&bench.TraceParams{HorizonS: rep.Trace.HorizonS, AvgRate: rep.Trace.Rate},
		map[string]float64{
			"events_per_sec":      rep.Trace.EventsPerS,
			"allocs_per_event":    rep.Trace.AllocsPerEv,
			"speedup_vs_baseline": rep.SpeedupVsBaseline,
		}, rep)
	if err == nil {
		err = bench.WriteFile(outPath, env)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "e3-bench:", err)
		return 1
	}
	fmt.Printf("wrote %s\n", outPath)
	return 0
}
