// Quickstart: plan and serve an early-exit BERT on a small simulated
// cluster, then compare E3 against the vanilla and naive-EE baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"e3/internal/cluster"
	"e3/internal/core"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/scheduler"
	"e3/internal/sim"
	"e3/internal/workload"
)

func main() {
	// A 12-layer BERT with DeeBERT-style entropy ramps after every layer.
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	// Eight V100s, two per machine, 10G Ethernet between machines.
	clus := cluster.Homogeneous(gpu.V100, 8)
	// Virtual time: the whole run below takes milliseconds of real time.
	eng := sim.NewEngine()

	sys, err := core.New(eng, clus, m, core.Options{
		SLO:   0.100, // 100 ms
		Batch: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Profile the expected workload (80% easy inputs) and plan.
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", sys.Plan())

	// Serve 2,000 batches, closed loop.
	gen := workload.NewGenerator(workload.Mix(0.8), 1)
	interval := 8 / sys.Plan().Goodput
	for i := 0; i < 2000; i++ {
		at := float64(i) * interval
		eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), 0.100)) })
	}
	if err := eng.RunAll(); err != nil {
		log.Fatal(err)
	}
	sys.FlushAll()
	if err := eng.RunAll(); err != nil {
		log.Fatal(err)
	}

	c := sys.Collector()
	fmt.Printf("E3:        %.0f samples/s goodput, %s\n", c.Good.Goodput(), c.Lat.Summarize())

	// The same load through the naive EE baseline (eager per-ramp exits).
	engB := sim.NewEngine()
	collB := scheduler.NewCollector(12, 0.100, 0)
	devs := make([]int, clus.Size())
	for i := range devs {
		devs[i] = i
	}
	dp, err := scheduler.NewDataParallel(engB, clus, m, devs, collB)
	if err != nil {
		log.Fatal(err)
	}
	genB := workload.NewGenerator(workload.Mix(0.8), 1)
	for i := 0; i < 2000; i++ {
		at := float64(i) * interval
		engB.At(at, func() { dp.Ingest(genB.Batch(8, engB.Now(), 0.100)) })
	}
	if err := engB.RunAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive EE:  %.0f samples/s goodput, %.1f%% SLO violations\n",
		collB.Good.Goodput(),
		100*float64(collB.Violations)/float64(collB.Violations+collB.Good.Served))
}
