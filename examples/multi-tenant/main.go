// multi-tenant partitions one shared GPU cluster between two E3-served
// models — an NLP ranker and a vision classifier — the multi-service shape
// of the paper's production infrastructure (§2.4).
//
//	go run ./examples/multi-tenant
package main

import (
	"fmt"
	"log"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/multi"
	"e3/internal/sim"
	"e3/internal/workload"
)

func main() {
	tenants := []multi.Tenant{
		{
			Name:  "nlp-ranker",
			Model: ee.NewDeeBERT(model.BERTBase(), 0.4),
			Dist:  workload.Mix(0.8),
			Rate:  4000,
			SLO:   0.100,
			Batch: 8,
		},
		{
			Name:  "vision",
			Model: ee.NewBranchyNet(model.ResNet50()),
			Dist:  workload.ImageNet(),
			Rate:  8000,
			SLO:   0.100,
			Batch: 16,
		},
	}
	clus := cluster.Homogeneous(gpu.V100, 24)

	allocs, err := multi.Plan(clus, tenants)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partitioning of 24 V100s:")
	for _, a := range allocs {
		fmt.Printf("  %-11s %2d devices  plan: %v\n", a.Tenant, len(a.Devices), a.Plan)
	}

	eng := sim.NewEngine()
	fleet, err := multi.Deploy(eng, clus, tenants, allocs)
	if err != nil {
		log.Fatal(err)
	}

	// Serve both tenants at their demanded rates for 5 virtual seconds.
	for _, tn := range tenants {
		tn := tn
		gen := workload.NewGenerator(tn.Dist, 7)
		interval := float64(tn.Batch) / tn.Rate
		for at := interval; at < 5; at += interval {
			at := at
			eng.At(at, func() {
				if err := fleet.Ingest(tn.Name, gen.Batch(tn.Batch, eng.Now(), tn.SLO)); err != nil {
					log.Fatal(err)
				}
			})
		}
	}
	eng.SetEventLimit(50_000_000)
	if err := eng.RunAll(); err != nil {
		log.Fatal(err)
	}
	fleet.FlushAll()
	if err := eng.RunAll(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nserved:")
	for _, tn := range tenants {
		c := fleet.Collector(tn.Name)
		c.Good.CloseAt(eng.Now())
		fmt.Printf("  %-11s %6.0f req/s goodput  (%d violations, %d drops)  %s\n",
			tn.Name, c.Good.Goodput(), c.Violations, c.Dropped, c.Lat.Summarize())
	}
}
