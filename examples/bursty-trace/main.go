// bursty-trace replays a Twitter-like open-loop trace (§5.7) through E3
// with dynamic batching, SLA-pressure dispatch, and admission control, and
// reports goodput, latency, and GPU utilization.
//
//	go run ./examples/bursty-trace
package main

import (
	"fmt"
	"log"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/trace"
	"e3/internal/workload"
)

func main() {
	const (
		avgRate = 1000.0
		horizon = 120.0
		batch   = 8
		slo     = 0.100
	)
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	clus := cluster.Homogeneous(gpu.V100, 16)

	prof := profile.FromDist(m, workload.Mix(0.8), 8000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: m, Profile: prof, Batch: batch, Cluster: clus,
		SLO: slo, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	arr := trace.Bursty(trace.DefaultBursty(avgRate), horizon, 7)
	fmt.Printf("trace: %d arrivals, avg %.0f req/s, burstiness CV²=%.0f\n",
		len(arr), arr.Rate(horizon), arr.Burstiness())

	eng := sim.NewEngine()
	coll := scheduler.NewCollector(m.Base.NumLayers(), slo, 0)
	pipe, err := scheduler.NewPipeline(eng, clus, m, plan, coll)
	if err != nil {
		log.Fatal(err)
	}
	batcher := serving.NewBatcher(eng, pipe, batch, plan.Latency, 0.2)
	gen := workload.NewGenerator(workload.Mix(0.8), 7)
	c, err := serving.RunOpenLoop(eng, pipe, batcher, arr, gen, slo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("goodput:     %.0f req/s (of %.0f offered)\n", c.Good.Goodput(), arr.Rate(horizon))
	fmt.Printf("dropped:     %d  violations: %d\n", c.Dropped, c.Violations)
	fmt.Printf("latency:     %s\n", c.Lat.Summarize())
	fmt.Printf("utilization: %.1f%% (bursty traces leave GPUs mostly idle)\n",
		100*c.Util.Utilization(eng.Now()))
}
