// llm-serving reproduces the §5.1.3 autoregressive scenario in miniature:
// T5+CALM translation where ~70% of tokens exit by decoder layer 2. It
// compares static-batch T5, static-batch CALM, and E3's token-stream split
// pipeline on 4 A6000s.
//
//	go run ./examples/llm-serving
package main

import (
	"fmt"
	"log"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/llm"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/scheduler"
	"e3/internal/serving"
	"e3/internal/sim"
	"e3/internal/workload"
)

func main() {
	const (
		avgTokens = 25
		batch     = 16
		nGPU      = 4
	)
	spec := gpu.Get(gpu.A6000)
	dist := workload.WMT()
	lengths := llm.FixedLen(avgTokens)

	t5 := ee.NewVanilla(model.T5Decoder(avgTokens))
	calm := ee.NewCALM(model.T5Decoder(avgTokens), 0.25)

	gT5 := llm.GoodputStatic(t5, lengths, dist, batch, nGPU, spec, 30, 1)
	gCALM := llm.GoodputStatic(calm, lengths, dist, batch, nGPU, spec, 30, 1)

	// E3: plan token-level splits, then measure the pipeline on the token
	// stream (each "sample" is one token pass).
	clus := cluster.Homogeneous(gpu.A6000, nGPU)
	prof := profile.FromDist(calm, dist, 8000, 1)
	plan, err := optimizer.MaximizeGoodput(optimizer.Config{
		Model: calm, Profile: prof, Batch: batch, Cluster: clus,
		SLO: 0.100 * avgTokens / 4, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("E3 token-pipeline plan:", plan)

	build := func() (*sim.Engine, scheduler.Runner) {
		eng := sim.NewEngine()
		coll := scheduler.NewCollector(calm.Base.NumLayers(), 10, 0)
		p, err := scheduler.NewPipeline(eng, cluster.Homogeneous(gpu.A6000, nGPU), calm, plan, coll)
		if err != nil {
			log.Fatal(err)
		}
		return eng, p
	}
	gen := func() *workload.Generator { return workload.NewGenerator(dist, 2) }
	tokensPerSec := serving.MaxGoodput(build, gen, batch, 10, 2, 100000, 0.01)
	gE3 := tokensPerSec / avgTokens

	fmt.Printf("\n%-22s %10s %8s\n", "system", "req/s", "vs T5")
	fmt.Printf("%-22s %10.1f %8s\n", "T5 (static batch)", gT5, "1.00x")
	fmt.Printf("%-22s %10.1f %7.2fx\n", "CALM (static batch)", gCALM, gCALM/gT5)
	fmt.Printf("%-22s %10.1f %7.2fx\n", "E3 (token pipeline)", gE3, gE3/gT5)
}
