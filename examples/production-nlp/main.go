// production-nlp recreates the paper's §2.4 production scenario: a
// 12-layer BERT document-classification service at ~9,000 req/s with a
// 100 ms SLO, where early exits deliver the per-input compute budget that
// compression alone could not — once E3 solves the batching problem.
// The workload shifts hardness mid-run; E3's online profiler re-plans.
//
//	go run ./examples/production-nlp
package main

import (
	"fmt"
	"log"

	"e3/internal/cluster"
	"e3/internal/core"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/sim"
	"e3/internal/workload"
)

func main() {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	clus := cluster.Homogeneous(gpu.V100, 16)
	eng := sim.NewEngine()

	sys, err := core.New(eng, clus, m, core.Options{
		SLO:            0.100,
		Batch:          8,
		ReplanInterval: 5, // shortened from the paper's 2 min for the demo
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Bootstrap(workload.Mix(0.8)); err != nil {
		log.Fatal(err)
	}
	sys.StartAutoReplan()
	fmt.Println("initial plan:", sys.Plan())

	// 8,000 req/s for 30 virtual seconds; hardness shifts from 80% easy to
	// 50% easy at t=15s (the §5.4 adaptability scenario).
	const rate = 8000.0
	gen := workload.NewGenerator(workload.Mix(0.8), 1)
	eng.At(15, func() { gen.SwitchDist(workload.Mix(0.5)) })
	interval := 8 / rate
	for at := interval; at < 30; at += interval {
		at := at
		eng.At(at, func() { sys.Ingest(gen.Batch(8, eng.Now(), 0.100)) })
	}
	eng.SetEventLimit(100_000_000)
	if err := eng.Run(31); err != nil {
		log.Fatal(err)
	}
	sys.StopAutoReplan() // the control loop would otherwise tick forever
	sys.FlushAll()
	if err := eng.Run(40); err != nil {
		log.Fatal(err)
	}

	c := sys.Collector()
	fmt.Printf("served %d requests at %.0f req/s goodput (%.2f%% violations, %d drops)\n",
		c.Good.Served, c.Good.Goodput(),
		100*float64(c.Violations)/float64(c.Good.Served+c.Violations), c.Dropped)
	fmt.Printf("latency: %s\n", c.Lat.Summarize())
	fmt.Printf("replans: %d (profiler tracked the hardness shift)\n", sys.Replans())
	fmt.Println("final plan:", sys.Plan())
}
