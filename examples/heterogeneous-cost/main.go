// heterogeneous-cost demonstrates E3's heterogeneity-aware planning
// (§3.2.3, Figures 13–15): on a mixed V100/P100/K80 pool, E3 places
// replicated early splits on cheap GPUs and the low-batch tail on fast
// ones, then finds the cheapest configuration for a goodput target.
//
//	go run ./examples/heterogeneous-cost
package main

import (
	"fmt"
	"log"

	"e3/internal/cluster"
	"e3/internal/ee"
	"e3/internal/gpu"
	"e3/internal/model"
	"e3/internal/optimizer"
	"e3/internal/profile"
	"e3/internal/workload"
)

func main() {
	m := ee.NewDeeBERT(model.BERTBase(), 0.4)
	prof := profile.FromDist(m, workload.Mix(0.8), 8000, 1)

	// Maximize goodput on the paper's cost-matched heterogeneous cluster.
	het := cluster.PaperHeterogeneous()
	cfg := optimizer.Config{
		Model: m, Profile: prof, Batch: 8, Cluster: het,
		SLO: 0.100, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
	}
	plan, err := optimizer.MaximizeGoodput(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("goodput-max plan on 6xV100 + 8xP100 + 15xK80:")
	fmt.Println(" ", plan)
	for _, s := range plan.Splits {
		fmt.Printf("  split [%2d..%2d] on %-5s x%d  (stage %.2fms)\n",
			s.From, s.To, s.Kind, s.Replicas, s.StageTime*1e3)
	}

	// Same goodput, minimal dollars, from a deep pool.
	pool := cluster.New(map[gpu.Kind]int{gpu.V100: 48, gpu.P100: 48, gpu.K80: 48}, 2)
	cfg.Cluster = pool
	target := 6000.0
	cheap, err := optimizer.MinimizeCost(cfg, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheapest plan for %.0f samples/s: $%.2f/min using %d GPUs\n",
		target, cheap.CostPerSec*60, cheap.GPUs)
	for _, s := range cheap.Splits {
		fmt.Printf("  split [%2d..%2d] on %-5s x%d\n", s.From, s.To, s.Kind, s.Replicas)
	}

	// Contrast: the cheapest single-kind data-parallel deployment of the
	// non-EE model needs more dollars for the same rate.
	van := ee.NewVanilla(model.BERTBase())
	vanProf := profile.FromDist(van, workload.Mix(0.8), 2000, 1)
	best := 0.0
	var bestKind gpu.Kind
	for _, k := range []gpu.Kind{gpu.V100, gpu.P100, gpu.K80} {
		cfgV := optimizer.Config{
			Model: van, Profile: vanProf, Batch: 8,
			Cluster: cluster.New(map[gpu.Kind]int{k: 64}, 2),
			SLO:     0.100, SlackFrac: 0.2, MinExitFrac: optimizer.DefaultMinExitFrac, Pipelining: true, ModelParallel: true,
		}
		p, err := optimizer.MinimizeCost(cfgV, target)
		if err != nil {
			continue
		}
		if best == 0 || p.CostPerSec < best {
			best = p.CostPerSec
			bestKind = k
		}
	}
	if best > 0 {
		fmt.Printf("\nvanilla BERT best single-kind option: $%.2f/min on %s\n", best*60, bestKind)
	}
}
