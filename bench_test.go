package e3

// The benchmark harness: one testing.B benchmark per paper table/figure,
// each regenerating its experiment through internal/experiments and
// reporting the headline metric. Run everything with
//
//	go test -bench=. -benchmem
//
// or a single figure with -bench=BenchmarkFig07. Printed tables are
// suppressed here; use cmd/e3-bench to see them.

import (
	"strconv"
	"testing"

	"e3/internal/experiments"
)

// runExperiment executes one registered experiment per benchmark
// iteration and reports its headline number as a custom metric.
func runExperiment(b *testing.B, id string, metric func(experiments.Table) (float64, string)) {
	b.Helper()
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if metric != nil {
		v, unit := metric(last)
		b.ReportMetric(v, unit)
	}
}

// lastCell parses the table's last row at the given column as a float.
func lastCell(t experiments.Table, col int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	row := t.Rows[len(t.Rows)-1]
	if col >= len(row) {
		return 0
	}
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkFig02(b *testing.B) {
	runExperiment(b, "fig02", func(t experiments.Table) (float64, string) {
		// BERT-EE latency as % of BERT on SST-2 (row 1).
		if len(t.Rows) > 1 {
			v, _ := strconv.ParseFloat(t.Rows[1][3], 64)
			return v, "ee-latency-%"
		}
		return 0, "ee-latency-%"
	})
}

func BenchmarkFig03(b *testing.B) {
	runExperiment(b, "fig03", func(t experiments.Table) (float64, string) {
		// GPU utilization at the last ramp (QNLI).
		return lastCell(t, 2), "util-%-ramp12"
	})
}

func BenchmarkFig07(b *testing.B) {
	runExperiment(b, "fig07", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-goodput-b8"
	})
}

func BenchmarkFig08(b *testing.B) {
	runExperiment(b, "fig08", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-goodput-b32"
	})
}

func BenchmarkFig09(b *testing.B) {
	runExperiment(b, "fig09", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-goodput-b32"
	})
}

func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "fig10", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-req/s-b32"
	})
}

func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-req/s-b32"
	})
}

func BenchmarkFig12(b *testing.B) {
	runExperiment(b, "fig12", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-goodput-b32"
	})
}

func BenchmarkFig13(b *testing.B) {
	runExperiment(b, "fig13", func(t experiments.Table) (float64, string) {
		return lastCell(t, 4), "e3/best-baseline-b8"
	})
}

func BenchmarkFig14(b *testing.B) {
	runExperiment(b, "fig14", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-gpus-b8"
	})
}

func BenchmarkFig15(b *testing.B) {
	runExperiment(b, "fig15", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-$/min-b8"
	})
}

func BenchmarkFig16(b *testing.B) {
	runExperiment(b, "fig16", func(t experiments.Table) (float64, string) {
		return lastCell(t, 4), "e3-goodput-hard-b8"
	})
}

func BenchmarkFig17(b *testing.B) {
	runExperiment(b, "fig17", func(t experiments.Table) (float64, string) {
		// E3 homogeneous median latency (row index 2, column 4).
		if len(t.Rows) > 2 {
			v, _ := strconv.ParseFloat(t.Rows[2][4], 64)
			return v, "e3-median-ms"
		}
		return 0, "e3-median-ms"
	})
}

func BenchmarkFig18(b *testing.B) {
	runExperiment(b, "fig18", func(t experiments.Table) (float64, string) {
		return lastCell(t, 5), "e3/pabee-b8"
	})
}

func BenchmarkFig19(b *testing.B) {
	runExperiment(b, "fig19", func(t experiments.Table) (float64, string) {
		return lastCell(t, 1), "e3-goodput"
	})
}

func BenchmarkFig20(b *testing.B) {
	runExperiment(b, "fig20", func(t experiments.Table) (float64, string) {
		return lastCell(t, 2), "optimizer-ms-hetero"
	})
}

func BenchmarkFig21(b *testing.B) {
	runExperiment(b, "fig21", func(t experiments.Table) (float64, string) {
		return lastCell(t, 1), "predicted-batch-cut1"
	})
}

func BenchmarkFig22(b *testing.B) {
	runExperiment(b, "fig22", func(t experiments.Table) (float64, string) {
		return lastCell(t, 1), "goodput-100%err-b8"
	})
}

func BenchmarkFig23(b *testing.B) {
	runExperiment(b, "fig23", func(t experiments.Table) (float64, string) {
		return lastCell(t, 5), "e3/dee-entropy0.5-b8"
	})
}

func BenchmarkFig24(b *testing.B) {
	runExperiment(b, "fig24", func(t experiments.Table) (float64, string) {
		return lastCell(t, 4), "e3-goodput-b64"
	})
}

func BenchmarkFig25(b *testing.B) {
	runExperiment(b, "fig25", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "wrapper-gain-%-b8"
	})
}

func BenchmarkFig26(b *testing.B) {
	runExperiment(b, "fig26", func(t experiments.Table) (float64, string) {
		return lastCell(t, 5), "mp-on/off-b8"
	})
}

func BenchmarkAblationForecaster(b *testing.B) {
	runExperiment(b, "ablation-forecaster", func(t experiments.Table) (float64, string) {
		if len(t.Rows) > 0 {
			v, _ := strconv.ParseFloat(t.Rows[0][1], 64)
			return v, "arima-trend-mae"
		}
		return 0, "arima-trend-mae"
	})
}

func BenchmarkAblationPipelining(b *testing.B) {
	runExperiment(b, "ablation-pipelining", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "pipeline-gain-b8"
	})
}

func BenchmarkAblationSplits(b *testing.B) {
	runExperiment(b, "ablation-splits", func(t experiments.Table) (float64, string) {
		return lastCell(t, 1), "planned-goodput-5splits"
	})
}

func BenchmarkExtensionTuning(b *testing.B) {
	runExperiment(b, "extension-tuning", func(t experiments.Table) (float64, string) {
		return lastCell(t, 4), "tuned-goodput-floor90"
	})
}

func BenchmarkExtensionContinuous(b *testing.B) {
	runExperiment(b, "extension-continuous", func(t experiments.Table) (float64, string) {
		return lastCell(t, 2), "e3/t5-static"
	})
}

func BenchmarkExtensionBuffers(b *testing.B) {
	runExperiment(b, "extension-buffers", func(t experiments.Table) (float64, string) {
		return lastCell(t, 2), "recovered-gpus"
	})
}

func BenchmarkExtensionStraggler(b *testing.B) {
	runExperiment(b, "extension-straggler", func(t experiments.Table) (float64, string) {
		return lastCell(t, 1), "straggler-goodput"
	})
}

func BenchmarkExtensionMultiTenant(b *testing.B) {
	runExperiment(b, "extension-multitenant", func(t experiments.Table) (float64, string) {
		return lastCell(t, 4), "tenant2-measured"
	})
}

func BenchmarkProductionStory(b *testing.B) {
	runExperiment(b, "production", func(t experiments.Table) (float64, string) {
		return lastCell(t, 3), "e3-$/1M-req"
	})
}
