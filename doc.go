// Package e3 reproduces E3 — "Improving DNN Inference Throughput Using
// Practical, Per-Input Compute Adaptation" (SOSP 2024) — as a pure-Go
// library over a deterministic cluster simulator.
//
// E3 makes early-exit DNNs practical for batched serving by splitting a
// model into contiguous layer blocks at exit ramps and replicating
// upstream splits so merged survivor batches keep every split running at
// a constant batch size. An online ARIMA profiler predicts per-window exit
// behaviour, a dynamic-programming optimizer chooses splits, GPU kinds and
// replica counts under SLO and cost constraints, and a pipelined
// model-parallel scheduler executes the plan with straggler handling.
//
// Layout:
//
//	internal/core        the E3 system facade (profiler + optimizer + scheduler)
//	internal/optimizer   the §3.2 planning optimization
//	internal/forecast    ARIMA batch-profile estimation (§3.1)
//	internal/scheduler   pipelined model-parallel execution (§3.3) + baselines
//	internal/ee          early-exit framework (DeeBERT/BranchyNet/PABEE/CALM/...)
//	internal/exec        batch execution semantics on the GPU cost model
//	internal/gpu ...     the simulated substrate (devices, network, cluster)
//	internal/experiments one runner per paper table/figure
//	cmd/...              e3-bench, e3-serve, e3-optimize, e3-trace
//	examples/...         runnable end-to-end scenarios
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package e3
