# One-command verification for the builder and CI. `make verify` runs the
# full recipe in dependency order: cheap structural checks first (build,
# vet, invariant lint), then the test suites, then the race detector over
# the event-loop packages, and finally the end-to-end lifecycle
# conservation audit.

GO ?= go

.PHONY: verify build vet lint lintgate test race audit replan overhead bench plangate simgate slogate flamegate fleetgate

verify: build vet lintgate test race audit replan overhead plangate simgate slogate flamegate fleetgate
	@echo "verify: all checks passed"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# e3-lint enforces the simulator invariants (virtual time, seeded
# randomness, epsilon-safe deadline math, ledger pairing, determinism
# taint, hot-path allocation, error propagation, single-goroutine event
# loop). See README "Static invariants".
lint:
	$(GO) run ./cmd/e3-lint ./...

# Baseline-gated lint: fails on any finding not in lint.baseline.json
# (exit 1) and on any stale baseline entry whose violation was fixed
# (exit 3); exit 2 means the tree failed to load. This is the verify/CI
# entry point — `make lint` is the raw, baseline-free view.
lintgate:
	$(GO) run ./cmd/e3-lint -json -baseline lint.baseline.json ./... > /dev/null

test:
	$(GO) test ./...

# The batcher, runners, and collector share ledger state on the event
# loop; -race keeps the single-goroutine discipline honest at runtime
# where the eventloop analyzer can only check structure.
race:
	$(GO) test -race ./internal/sim/ ./internal/exec/ ./internal/serving/ ./internal/scheduler/ ./internal/optimizer/ ./internal/slo/ ./internal/flame/ ./internal/fleet/

# End-to-end conservation audit: exits nonzero on any lifecycle violation.
audit:
	$(GO) run ./cmd/e3-bench -audit

# Windowed replan loop conservation gate: the predict→plan→serve→observe
# loop must keep the sample ledger exact across every plan switch.
replan:
	$(GO) run ./cmd/e3-bench -windows 12 -audit

# Telemetry overhead gate: ring-traced demo runs must stay within a
# bounded wall-clock factor of untraced runs. Env-gated so plain
# `go test ./...` stays fast and timing-noise-free.
overhead:
	E3_OVERHEAD_GATE=1 $(GO) test ./internal/telemetry/ -run TestTelemetryOverheadGate -v

# Planner fast-path gates: the memoized search must beat the retained
# reference search by E3_PLAN_GATE_FACTOR (default 3x) on the paper
# cluster, and a stable forecast must serve replans from the plan cache.
# Env-gated like the overhead gate to keep plain `go test ./...` fast.
plangate:
	E3_PLAN_GATE=1 $(GO) test ./internal/optimizer/ -run TestPlannerPerfGate -v
	$(GO) test ./internal/replan/ -run TestPlanCacheStableForecastGate -v

# Data-plane fast-path gate: the full serving stack must sustain an
# events/sec floor on a paper-scale Poisson slice, and pooled vs unpooled
# runs must stay byte-identical. Env-gated like the other timing gates;
# the determinism half always runs under plain `go test ./...`.
# `e3-bench -sim-bench BENCH_PR6.json` writes the full measurement.
simgate:
	E3_SIM_GATE=1 $(GO) test ./internal/experiments/ -run 'TestSimGate|TestSimBenchPooledUnpooledByteIdentical' -v

# SLO attribution gate: per-request critical-path breakdowns must
# reconcile exactly (zero sum mismatches) against the audit ledger on the
# paper trace and across the drifting replan loop, and the same seed must
# produce a byte-identical flight-recorder bundle. Always on — no env
# gate — because the checks are deterministic and fast.
slogate:
	$(GO) test ./internal/slo/ -run 'TestSLOGate' -v

# Compute-profiler gate: the flame fold must account for every device's
# busy and idle time exactly (zero integer-nanosecond residual against
# the utilization ledger), the same seed must produce byte-identical
# folded output regardless of planner worker count, and the
# serial-vs-pipeline diff must be non-empty. Always on — deterministic
# virtual-time checks, no timing.
flamegate:
	$(GO) test ./internal/flame/ -run 'TestFlameGate|TestFlameAccountsLedgerExactlyAcrossSeedsAndRunners' -v

# Fleet tier gate: at every worker count the parallel sharded run must
# reproduce the serial reference byte-for-byte (per-shard ledger digests
# + router decision log), and aggregate events/s at 8 shards must beat 1
# shard by a factor scaled to the cores present (>=4x on 8+ cores; the
# timing half skips loudly on 1 core, where no speedup is physically
# possible). Env-gated like the other timing gates; the 20-seed
# determinism property tests always run under plain `go test ./...`.
# `e3-bench -fleet-bench BENCH_PR10.json` writes the full scaling curve.
fleetgate:
	E3_FLEET_GATE=1 $(GO) test ./internal/fleet/ -run TestFleetGate -v

# Planner and data-plane microbenchmarks (cost-table build, reference vs
# memoized search, engine heap churn, batcher flush, traced runner path).
# `e3-bench -plan-bench BENCH_PR5.json` / `-sim-bench BENCH_PR6.json`
# write the same comparisons as JSON.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/optimizer/ ./internal/sim/ ./internal/serving/ ./internal/experiments/
