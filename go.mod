module e3

go 1.22
